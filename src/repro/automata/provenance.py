"""Provenance (lineage) circuits of deterministic tree automata on uncertain trees.

Following [5, Proposition 3.1] and [6, Theorem 6.11] (as used by
Proposition 5.4), the lineage of a bottom-up *deterministic* tree automaton
``A`` on an uncertain tree ``T`` — the Boolean function over the uncertain
nodes' variables that is true exactly on the annotations making ``A``
accept — can be compiled into a d-DNNF circuit of size
``O(|A| · |T|)``:

* for every tree node ``x`` and every state ``q`` reachable at ``x``, the
  circuit has a gate ``g[x][q]`` that is true under an annotation iff the run
  of ``A`` on the subtree of ``x`` ends in state ``q``;
* the gate is an OR over the node's possible annotations (and, for internal
  nodes, over pairs of child states) of ANDs combining the node's literal
  with the child gates — the OR is *deterministic* because the automaton is
  deterministic (each annotation yields exactly one run), and the ANDs are
  *decomposable* because the node variable and the two child subtrees carry
  disjoint variables;
* the circuit output is the OR of ``g[root][q]`` over accepting states
  ``q``, deterministic for the same reason.

Probability computation on the resulting circuit is linear
(:meth:`repro.lineage.ddnnf.DDNNF.probability`), which yields the
polynomial combined complexity of Proposition 5.4.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from repro.automata.binary_tree import BinaryTreeNode, UncertainBinaryTree
from repro.automata.tree_automaton import BottomUpTreeAutomaton
from repro.lineage.ddnnf import DDNNF

State = Hashable


def provenance_circuit(
    automaton: BottomUpTreeAutomaton, tree: UncertainBinaryTree
) -> DDNNF:
    """Compile the lineage of ``automaton`` on ``tree`` into a d-DNNF circuit.

    The circuit's variables are the ``variable`` fields of the tree nodes
    (the original instance edges); structural nodes (``variable is None``)
    are treated as always present and contribute no literal.
    """
    circuit = DDNNF()

    def literal_gates(node: BinaryTreeNode) -> Dict[bool, Optional[int]]:
        """Gate of the literal asserting the node's annotation bit, or ``None`` for 'true'."""
        if node.variable is None:
            # Structural node: annotation is always 1, the 0 branch is dead.
            return {True: None}
        return {True: circuit.add_var(node.variable), False: circuit.add_not(node.variable)}

    def compile_node(node: BinaryTreeNode) -> Dict[State, int]:
        literals = literal_gates(node)
        gates: Dict[State, List[int]] = {}
        if node.is_leaf():
            for bit, literal in literals.items():
                state = automaton.initial((node.label, bit))
                gate = circuit.add_true() if literal is None else literal
                gates.setdefault(state, []).append(gate)
        else:
            left_gates = compile_node(node.left)
            right_gates = compile_node(node.right)
            for bit, literal in literals.items():
                for left_state, left_gate in left_gates.items():
                    for right_state, right_gate in right_gates.items():
                        state = automaton.transition((node.label, bit), left_state, right_state)
                        parts = [left_gate, right_gate]
                        if literal is not None:
                            parts.append(literal)
                        gates.setdefault(state, []).append(circuit.add_and(parts))
        return {state: circuit.add_or(alternatives) for state, alternatives in gates.items()}

    root_gates = compile_node(tree.root)
    accepting_gates = [gate for state, gate in root_gates.items() if automaton.accepting(state)]
    root = circuit.add_or(accepting_gates) if accepting_gates else circuit.add_false()
    circuit.set_root(root)
    return circuit
