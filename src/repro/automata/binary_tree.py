"""Uncertain full binary trees and the binary encoding of polytree instances.

Proposition 5.4 runs tree automata on *full binary* trees (every node has 0
or 2 children), so the polytree instance must first be binarised.  We use a
child-spine encoding in the spirit of the paper's appendix (a variant of the
left-child-right-sibling encoding with ε nodes):

* the underlying undirected tree of the polytree is rooted at an arbitrary
  vertex;
* the fragment of an original node ``n`` is the spine of its children: each
  spine node ("attach node") carries one original edge ``n — c`` (its
  direction relative to the rooting — ``up`` when the edge points from the
  child towards ``n``, ``down`` when it points from ``n`` to the child — and
  its probability), has the encoding of the child's fragment as left child
  and the continuation of the spine as right child;
* the spine ends with an ``ε`` leaf, and a childless original node is encoded
  by an ``ε`` leaf alone.

The binary subtree rooted at a spine node therefore represents the original
node ``n`` together with a suffix of its children subtrees — exactly the
invariant the longest-path automaton of :mod:`repro.automata.path_automaton`
relies on.  Every original edge appears on exactly one attach node, so the
attach nodes' Boolean annotations are in bijection with the possible worlds
of the instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import AutomatonError, ClassConstraintError
from repro.graphs.classes import is_polytree
from repro.graphs.digraph import DiGraph, Edge, Vertex
from repro.probability.prob_graph import ProbabilisticGraph

#: Node label: the original edge points from the child towards the parent.
LABEL_UP = "up"
#: Node label: the original edge points from the parent towards the child.
LABEL_DOWN = "down"
#: Node label: structural node with no original edge attached.
LABEL_EPSILON = "eps"

#: The alphabet Γ of the uncertain trees produced by :func:`encode_polytree`.
ALPHABET: Tuple[str, ...] = (LABEL_UP, LABEL_DOWN, LABEL_EPSILON)


@dataclass
class BinaryTreeNode:
    """One node of an uncertain full binary tree.

    Attributes
    ----------
    label:
        A letter of the alphabet Γ (for polytree encodings: ``up``, ``down``
        or ``eps``).
    probability:
        The probability that the node's Boolean annotation is 1.
    variable:
        The Boolean variable this node stands for (an instance
        :class:`~repro.graphs.digraph.Edge`), or ``None`` for structural
        nodes whose annotation is always 1.
    left, right:
        The children; either both present (internal node) or both absent
        (leaf), so that the tree is full binary.
    """

    label: str
    probability: Fraction = Fraction(1)
    variable: Optional[Edge] = None
    left: Optional["BinaryTreeNode"] = None
    right: Optional["BinaryTreeNode"] = None

    def is_leaf(self) -> bool:
        """Whether the node has no children."""
        return self.left is None and self.right is None

    def validate(self) -> None:
        """Check the full-binary invariant on the subtree rooted here."""
        if (self.left is None) != (self.right is None):
            raise AutomatonError("binary tree nodes must have zero or two children")
        if self.left is not None:
            self.left.validate()
        if self.right is not None:
            self.right.validate()


@dataclass
class UncertainBinaryTree:
    """An uncertain full binary tree together with its variable inventory."""

    root: BinaryTreeNode
    variables: List[Edge] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.root.validate()

    def nodes(self) -> Iterator[BinaryTreeNode]:
        """All nodes, in a post-order traversal (children before parents)."""
        stack: List[Tuple[BinaryTreeNode, bool]] = [(self.root, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded or node.is_leaf():
                yield node
            else:
                stack.append((node, True))
                if node.right is not None:
                    stack.append((node.right, False))
                if node.left is not None:
                    stack.append((node.left, False))

    def num_nodes(self) -> int:
        """Number of nodes in the tree."""
        return sum(1 for _ in self.nodes())

    def depth(self) -> int:
        """The depth (number of edges on the longest root-to-leaf path)."""
        def rec(node: BinaryTreeNode) -> int:
            if node.is_leaf():
                return 0
            return 1 + max(rec(node.left), rec(node.right))

        return rec(self.root)


def _rooted_children(
    graph: DiGraph, root: Vertex
) -> Dict[Vertex, List[Tuple[Vertex, str, Edge]]]:
    """Children lists of the underlying undirected tree rooted at ``root``.

    Each entry maps a vertex ``n`` to the list of ``(child, direction,
    original_edge)`` triples, where ``direction`` is :data:`LABEL_UP` when
    the original edge is ``child -> n`` and :data:`LABEL_DOWN` when it is
    ``n -> child``.
    """
    children: Dict[Vertex, List[Tuple[Vertex, str, Edge]]] = {v: [] for v in graph.vertices}
    visited = {root}
    stack = [root]
    while stack:
        current = stack.pop()
        for neighbour in sorted(graph.undirected_neighbours(current), key=repr):
            if neighbour in visited:
                continue
            visited.add(neighbour)
            if graph.has_edge(neighbour, current):
                direction = LABEL_UP
                edge = graph.get_edge(neighbour, current)
            else:
                direction = LABEL_DOWN
                edge = graph.get_edge(current, neighbour)
            children[current].append((neighbour, direction, edge))
            stack.append(neighbour)
    return children


def encode_polytree(
    instance: ProbabilisticGraph, root: Optional[Vertex] = None
) -> UncertainBinaryTree:
    """Encode a probabilistic polytree instance as an uncertain full binary tree.

    Parameters
    ----------
    instance:
        A probabilistic graph whose underlying graph is a polytree.
    root:
        Optional root vertex for the undirected rooting; defaults to the
        lexicographically smallest vertex.  The encoding (and hence the
        lineage circuit) depends on the rooting, but the computed
        probability does not.

    Raises
    ------
    ClassConstraintError:
        If the instance graph is not a polytree.
    """
    graph = instance.graph
    if not is_polytree(graph):
        raise ClassConstraintError("encode_polytree requires a polytree instance")
    if root is None:
        root = min(graph.vertices, key=repr)
    elif not graph.has_vertex(root):
        raise AutomatonError(f"root {root!r} is not a vertex of the instance")
    children = _rooted_children(graph, root)
    variables: List[Edge] = []

    def epsilon_leaf() -> BinaryTreeNode:
        return BinaryTreeNode(label=LABEL_EPSILON, probability=Fraction(1), variable=None)

    def encode_fragment(vertex: Vertex, remaining: List[Tuple[Vertex, str, Edge]]) -> BinaryTreeNode:
        if not remaining:
            return epsilon_leaf()
        child, direction, edge = remaining[0]
        variables.append(edge)
        return BinaryTreeNode(
            label=direction,
            probability=instance.probability(edge),
            variable=edge,
            left=encode_fragment(child, children[child]),
            right=encode_fragment(vertex, remaining[1:]),
        )

    tree_root = encode_fragment(root, children[root])
    return UncertainBinaryTree(root=tree_root, variables=variables)
