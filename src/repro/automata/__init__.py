"""Tree-automata substrate for the polytree algorithm of Proposition 5.4.

The PTIME algorithm for unlabeled one-way-path queries on polytree instances
works in three steps (Section 5 and the appendix of the paper):

1. encode the polytree instance, rooted arbitrarily, as an *uncertain full
   binary tree* whose nodes carry the direction (``up`` / ``down``) and the
   probability of the original edges, plus structural ``ε`` nodes
   (:mod:`repro.automata.binary_tree`);
2. build a bottom-up **deterministic** tree automaton whose states track the
   longest directed path entering the current fragment's root, leaving it,
   and anywhere inside the fragment, capped at the query length
   (:mod:`repro.automata.path_automaton`, generic machinery in
   :mod:`repro.automata.tree_automaton`);
3. compile the automaton's run over the uncertain tree into a d-DNNF lineage
   circuit whose variables are the instance edges, and evaluate its
   probability in linear time (:mod:`repro.automata.provenance`).
"""

from repro.automata.binary_tree import (
    BinaryTreeNode,
    UncertainBinaryTree,
    encode_polytree,
    LABEL_UP,
    LABEL_DOWN,
    LABEL_EPSILON,
)
from repro.automata.tree_automaton import BottomUpTreeAutomaton
from repro.automata.path_automaton import build_longest_path_automaton, PathState
from repro.automata.provenance import provenance_circuit

__all__ = [
    "BinaryTreeNode",
    "UncertainBinaryTree",
    "encode_polytree",
    "LABEL_UP",
    "LABEL_DOWN",
    "LABEL_EPSILON",
    "BottomUpTreeAutomaton",
    "build_longest_path_automaton",
    "PathState",
    "provenance_circuit",
]
