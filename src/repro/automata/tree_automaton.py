"""Bottom-up deterministic tree automata on full binary trees (Definition 5.2).

An automaton ``A = (Q, F, ι, Δ)`` runs on full binary trees whose nodes are
labeled by an alphabet ``Γ̄``; here ``Γ̄ = Γ × {0, 1}`` because the trees of
Proposition 5.4 are *uncertain*: each node carries a base label from ``Γ``
and a Boolean annotation saying whether the corresponding instance edge is
present in the possible world.

* ``ι : Γ̄ → Q`` gives the state of a leaf from its (annotated) label;
* ``Δ : Γ̄ × Q² → Q`` gives the state of an internal node from its
  (annotated) label and the states of its two (ordered) children;
* the automaton accepts when the root's state is in ``F``.

Determinism (``ι`` and ``Δ`` are functions) is what makes the provenance
circuit of :mod:`repro.automata.provenance` a d-DNNF.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Mapping, Optional, Set, Tuple

from repro.exceptions import AutomatonError
from repro.automata.binary_tree import BinaryTreeNode, UncertainBinaryTree
from repro.graphs.digraph import Edge

State = Hashable
#: Annotated letter: a base label from Γ together with a Boolean annotation.
AnnotatedLabel = Tuple[str, bool]


@dataclass
class BottomUpTreeAutomaton:
    """A bottom-up deterministic tree automaton on annotated full binary trees.

    The transition maps may be given extensionally (dictionaries) or
    intensionally (callables); the latter keeps polynomially-large automata
    such as the longest-path automaton small in memory, while
    :meth:`materialise` can still produce the explicit transition tables
    over a given set of reachable states when needed.
    """

    alphabet: FrozenSet[str]
    accepting: Callable[[State], bool]
    initial: Callable[[AnnotatedLabel], State]
    transition: Callable[[AnnotatedLabel, State, State], State]
    description: str = "bottom-up deterministic tree automaton"

    # ------------------------------------------------------------------
    # runs
    # ------------------------------------------------------------------
    def _check_label(self, label: str) -> None:
        if label not in self.alphabet:
            raise AutomatonError(f"label {label!r} is not in the automaton alphabet")

    def run_annotated(
        self, tree: UncertainBinaryTree, annotation: Mapping[Edge, bool]
    ) -> State:
        """The root state of the run on ``tree`` under the given edge annotation.

        Nodes whose ``variable`` is ``None`` (structural ε nodes) are always
        annotated 1; other nodes read their annotation from ``annotation``
        (missing edges default to absent).
        """
        def node_bit(node: BinaryTreeNode) -> bool:
            if node.variable is None:
                return True
            return bool(annotation.get(node.variable, False))

        def state_of(node: BinaryTreeNode) -> State:
            self._check_label(node.label)
            letter: AnnotatedLabel = (node.label, node_bit(node))
            if node.is_leaf():
                return self.initial(letter)
            left_state = state_of(node.left)
            right_state = state_of(node.right)
            return self.transition(letter, left_state, right_state)

        return state_of(tree.root)

    def accepts(self, tree: UncertainBinaryTree, annotation: Mapping[Edge, bool]) -> bool:
        """Whether the automaton accepts ``tree`` under the given annotation."""
        return bool(self.accepting(self.run_annotated(tree, annotation)))

    # ------------------------------------------------------------------
    # reachable-state exploration (used by tests and the ablation bench)
    # ------------------------------------------------------------------
    def reachable_states(self, tree: UncertainBinaryTree) -> Set[State]:
        """All states reachable at some node of ``tree`` under *some* annotation.

        Computed bottom-up: the reachable set of a node is the image of its
        children's reachable sets under both annotations of the node.  This
        is exactly the state space the provenance circuit will instantiate.
        """
        def rec(node: BinaryTreeNode) -> Set[State]:
            self._check_label(node.label)
            bits = (True,) if node.variable is None else (False, True)
            if node.is_leaf():
                return {self.initial((node.label, bit)) for bit in bits}
            left_states = rec(node.left)
            right_states = rec(node.right)
            states: Set[State] = set()
            for bit in bits:
                for ls in left_states:
                    for rs in right_states:
                        states.add(self.transition((node.label, bit), ls, rs))
            return states

        return rec(tree.root)

    def materialise(
        self, states: Iterable[State]
    ) -> Tuple[Dict[AnnotatedLabel, State], Dict[Tuple[AnnotatedLabel, State, State], State]]:
        """Explicit initialisation and transition tables over the given states.

        Only meaningful for small state sets; used by the documentation
        examples and by tests that inspect the automaton structure.
        """
        state_list = list(states)
        init_table: Dict[AnnotatedLabel, State] = {}
        delta_table: Dict[Tuple[AnnotatedLabel, State, State], State] = {}
        for label in sorted(self.alphabet):
            for bit in (False, True):
                letter = (label, bit)
                init_table[letter] = self.initial(letter)
                for left in state_list:
                    for right in state_list:
                        delta_table[(letter, left, right)] = self.transition(letter, left, right)
        return init_table, delta_table
