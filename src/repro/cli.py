"""Command-line interface for the library.

The subcommands mirror what a user typically wants:

* ``repro tables`` — print the paper's complexity classification
  (Tables 1–3), derived from the border-case propositions;
* ``repro classify --query-class 1WP --instance-class DWT --setting labeled``
  — look up one cell of the classification;
* ``repro solve QUERY INSTANCE.json`` — compute ``Pr(G ⇝ H)`` for a query
  (a JSON file in the format of :mod:`repro.graphs.serialization`, or a
  query-language string such as ``"R(x, y), S(y, z)"``) and a probabilistic
  instance JSON file, reporting the algorithm used;
* ``repro parse "R(x, y), S(y, z), S(t, z)" --explain`` — print the parsed
  IR, its homomorphic core, and the resulting (class, cell, method)
  classification, showing when minimization changes the complexity cell;
* ``repro serve --batch REQUESTS.jsonl`` — drive the parallel serving layer
  (:mod:`repro.service`) from a JSONL request stream, streaming JSONL
  results (``-`` reads stdin); with ``--state-dir`` the serving state is
  durable (:mod:`repro.persist`) and a restart warm-starts from disk;
* ``repro store {verify,compact,inspect} DIR`` — check every checksum in a
  state directory (exit 1 on corruption), fold its write-ahead log, or
  list what it holds;
* ``repro metrics SNAPSHOT`` / ``repro trace FILE [--validate]`` /
  ``repro top SNAPSHOT [--watch]`` — render the observability artifacts of
  a serving session (:mod:`repro.obs`): Prometheus text from a metrics
  snapshot, a span tree from a JSONL trace, and a live per-route serving
  dashboard;
* ``repro bench [hotpaths|plans|sampling|service|query]`` — run a benchmark
  suite and record its ``BENCH_*.json`` report.

The module is also importable: :func:`main` takes an ``argv`` list and
returns an exit code, which is how the test suite exercises it.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import List, Optional

from repro.classification.tables import (
    Setting,
    classify_cell,
    format_table,
    table1,
    table2,
    table3,
    table_rows,
)
from repro.core.solver import PHomSolver
from repro.exceptions import IntractableFallbackWarning, ReproError
from repro.graphs.classes import GraphClass
from repro.graphs.serialization import load_instance, load_query

#: Accepted spellings of the graph classes on the command line.
_CLASS_ALIASES = {
    "1wp": GraphClass.ONE_WAY_PATH,
    "2wp": GraphClass.TWO_WAY_PATH,
    "dwt": GraphClass.DOWNWARD_TREE,
    "pt": GraphClass.POLYTREE,
    "connected": GraphClass.CONNECTED,
    "all": GraphClass.ALL,
    "u1wp": GraphClass.UNION_ONE_WAY_PATH,
    "u2wp": GraphClass.UNION_TWO_WAY_PATH,
    "udwt": GraphClass.UNION_DOWNWARD_TREE,
    "upt": GraphClass.UNION_POLYTREE,
}


def _parse_class(value: str) -> GraphClass:
    key = value.strip().lower().replace("⊔", "u")
    if key not in _CLASS_ALIASES:
        raise argparse.ArgumentTypeError(
            f"unknown graph class {value!r}; expected one of {sorted(_CLASS_ALIASES)}"
        )
    return _CLASS_ALIASES[key]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Probabilistic graph homomorphism (PODS 2017 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("tables", help="print the complexity classification tables 1-3")

    classify = subparsers.add_parser("classify", help="classify one (query class, instance class) cell")
    classify.add_argument("--query-class", type=_parse_class, required=True)
    classify.add_argument("--instance-class", type=_parse_class, required=True)
    classify.add_argument(
        "--setting", choices=["labeled", "unlabeled"], default="labeled",
        help="labeled (|σ|>1) or unlabeled (|σ|=1) setting",
    )

    solve = subparsers.add_parser(
        "solve",
        help="compute Pr(query ⇝ instance) from JSON files or a query string",
    )
    solve.add_argument(
        "query",
        help=(
            "path to the query graph JSON file, or a query-language string "
            "such as 'R(x, y), S(y, z)' (anything that is not an existing file)"
        ),
    )
    solve.add_argument("instance", help="path to the probabilistic instance JSON file")
    solve.add_argument(
        "--no-minimize", action="store_true",
        help="classify the query exactly as written instead of minimizing it "
        "to its homomorphic core first",
    )
    solve.add_argument(
        "--method", default="auto",
        help="algorithm to use ('auto' or one of PHomSolver.available_methods())",
    )
    solve.add_argument(
        "--no-brute-force", action="store_true",
        help="fail instead of falling back to exponential enumeration on #P-hard cells",
    )
    solve.add_argument(
        "--prefer", choices=["dp", "lineage", "automaton"], default="dp",
        help="evaluation flavour for the tractable cases",
    )
    solve.add_argument(
        "--precision", choices=["exact", "float", "approx"], default="exact",
        help=(
            "numeric backend: exact rationals (default), fast floats, or "
            "'approx' to answer #P-hard combinations with the Karp-Luby "
            "(epsilon, delta) sampler instead of exponential brute force"
        ),
    )
    solve.add_argument(
        "--epsilon", type=float, default=0.05,
        help="approx: relative error bound of the sampler (default 0.05)",
    )
    solve.add_argument(
        "--delta", type=float, default=0.01,
        help="approx: failure probability of the error bound (default 0.01)",
    )
    solve.add_argument(
        "--seed", type=int, default=None,
        help="approx: RNG seed for reproducible estimates (default: fresh entropy)",
    )

    parse = subparsers.add_parser(
        "parse",
        help=(
            "parse a query-language string, print its IR and homomorphic "
            "core, and (--explain) the classification cell and dispatch route"
        ),
    )
    parse.add_argument("query", help="the query string, e.g. 'R(x, y), S(y, z), S(t, z)'")
    parse.add_argument(
        "--explain", action="store_true",
        help="additionally print the (class, cell, method) classification "
        "before and after minimization",
    )
    parse.add_argument(
        "--instance-class", type=_parse_class, default=GraphClass.ALL,
        help="instance class to classify against (default: all)",
    )
    parse.add_argument(
        "--setting", choices=["auto", "labeled", "unlabeled"], default="auto",
        help="labeled/unlabeled setting (default: inferred from the query's labels)",
    )

    serve = subparsers.add_parser(
        "serve",
        help=(
            "serve a JSONL request stream through the parallel QueryService "
            "(register/solve/update ops in, JSONL results out)"
        ),
    )
    serve.add_argument(
        "--batch", required=True, metavar="REQUESTS",
        help="path to a JSONL request file, or '-' to read stdin",
    )
    serve.add_argument(
        "--output", default="-",
        help="where to stream the JSONL results (default: stdout)",
    )
    serve.add_argument(
        "--workers", type=int, default=None,
        help=(
            "worker processes for instance-affinity sharding "
            "(default: min(4, cpu count); 0 serves inline in-process)"
        ),
    )
    serve.add_argument(
        "--precision", choices=["exact", "float", "approx"], default="exact",
        help="default precision for requests that do not choose one",
    )
    serve.add_argument(
        "--no-brute-force", action="store_true",
        help="fail #P-hard exact requests instead of enumerating worlds",
    )
    serve.add_argument(
        "--prefer", choices=["dp", "lineage", "automaton"], default="dp",
        help="evaluation flavour for the tractable cases",
    )
    serve.add_argument(
        "--plan-cache-size", type=int, default=128,
        help="per-worker compiled-plan cache capacity (0 disables)",
    )
    serve.add_argument(
        "--result-cache-size", type=int, default=1024,
        help="per-worker result cache capacity (0 disables)",
    )
    serve.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help=(
            "durable-state directory: registrations and updates are "
            "write-ahead logged, compiled plans are stored on disk, and a "
            "restart with the same directory warm-starts from both"
        ),
    )
    serve.add_argument(
        "--wal-fsync", choices=["always", "batch", "never"], default="batch",
        help="write-ahead-log durability policy (with --state-dir)",
    )
    serve.add_argument(
        "--stats", action="store_true",
        help="print serving statistics to stderr when the stream ends",
    )
    serve.add_argument(
        "--trace", default=None, metavar="PATH",
        help=(
            "write a span JSONL trace of the session to PATH; render it "
            "with 'repro trace PATH'"
        ),
    )
    serve.add_argument(
        "--trace-sample-rate", type=float, default=None, metavar="RATE",
        help=(
            "fraction of request batches traced, in [0, 1] "
            "(default: 1.0 when --trace is given, otherwise tracing is off)"
        ),
    )
    serve.add_argument(
        "--slow-query-ms", type=float, default=None, metavar="MS",
        help=(
            "record requests slower than this in the slow-query log "
            "(printed to stderr with --stats)"
        ),
    )
    serve.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help=(
            "write the pool-wide metrics snapshot (JSON) to PATH, refreshed "
            "after every batch; render it with 'repro metrics' or watch it "
            "with 'repro top --watch'"
        ),
    )
    serve.add_argument(
        "--metrics-interval", type=float, default=2.0, metavar="SECONDS",
        help=(
            "minimum seconds between metrics-snapshot refreshes with "
            "--metrics-out (the final snapshot is always written)"
        ),
    )

    metrics = subparsers.add_parser(
        "metrics",
        help=(
            "render a metrics snapshot (the JSON written by "
            "'repro serve --metrics-out') as Prometheus text-format output"
        ),
    )
    metrics.add_argument(
        "snapshot", metavar="SNAPSHOT",
        help="path to the snapshot JSON file, or '-' to read stdin",
    )

    trace = subparsers.add_parser(
        "trace",
        help=(
            "render a span JSONL trace (written by 'repro serve --trace') "
            "as an indented span tree with per-phase totals"
        ),
    )
    trace.add_argument(
        "trace_file", metavar="TRACE",
        help="path to the span JSONL file",
    )
    trace.add_argument(
        "--validate", action="store_true",
        help=(
            "check the trace invariants (unique span ids, no orphan "
            "parents, closed statuses, monotonic timestamps) and exit 1 "
            "on any violation"
        ),
    )

    top = subparsers.add_parser(
        "top",
        help=(
            "serving dashboard from a metrics snapshot: per-route request "
            "counts and latency percentiles, cache hit rates, sampler "
            "volume, steal/restart counters"
        ),
    )
    top.add_argument(
        "snapshot", metavar="SNAPSHOT",
        help="path to the snapshot JSON file (as written by --metrics-out)",
    )
    top.add_argument(
        "--watch", action="store_true",
        help="re-read the snapshot periodically and render request rates",
    )
    top.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="refresh period with --watch (default 2s)",
    )
    top.add_argument(
        "--iterations", type=int, default=0, metavar="N",
        help="with --watch, stop after N refreshes (0 = until interrupted)",
    )

    store = subparsers.add_parser(
        "store",
        help=(
            "operate on a QueryService state directory: 'verify' checks every "
            "write-ahead-log frame and plan-store entry against its checksum "
            "(exit 1 on any corruption), 'compact' folds the log into fresh "
            "snapshots, 'inspect' lists the durable state"
        ),
    )
    store.add_argument(
        "action", choices=["verify", "compact", "inspect"],
        help="what to do with the state directory",
    )
    store.add_argument(
        "state_dir", metavar="DIR",
        help="the state directory (as passed to 'repro serve --state-dir')",
    )

    bench = subparsers.add_parser(
        "bench",
        help=(
            "run a benchmark suite: 'hotpaths' (default, records BENCH_hotpaths.json), "
            "'plans' (compiled query plans, records BENCH_plans.json), "
            "'sampling' (Karp-Luby vs brute force, records BENCH_sampling.json), "
            "'service' (parallel serving layer, records BENCH_service.json) or "
            "'query' (core minimization, records BENCH_query.json)"
        ),
    )
    bench.add_argument(
        "suite", nargs="?",
        choices=["hotpaths", "plans", "sampling", "service", "query"],
        default="hotpaths",
        help="which benchmark suite to run (default: hotpaths)",
    )
    bench.add_argument(
        "--instance-size", type=int, default=60,
        help="instance size knob for the benchmark workloads",
    )
    bench.add_argument(
        "--queries", type=int, default=40,
        help="number of queries per repeated-query workload",
    )
    bench.add_argument(
        "--repeat", type=int, default=3,
        help="hotpaths: number of timed repetitions per configuration",
    )
    bench.add_argument(
        "--rounds", type=int, default=5,
        help="plans: number of probability-drift rounds per workload",
    )
    bench.add_argument(
        "--updates", type=int, default=200,
        help="plans: number of single-edge updates in the incremental stream",
    )
    bench.add_argument(
        "--min-reuse-speedup", type=float, default=0.0,
        help="plans: fail when the recorded plan-reuse speedup drops below this",
    )
    bench.add_argument(
        "--min-incremental-speedup", type=float, default=0.0,
        help="plans: fail when the recorded incremental-update speedup drops below this",
    )
    bench.add_argument(
        "--min-tape-speedup", type=float, default=0.0,
        help=(
            "plans: fail when the batched-tape speedup at the largest batch "
            "size drops below this"
        ),
    )
    bench.add_argument(
        "--min-sampling-speedup", type=float, default=0.0,
        help=(
            "sampling: fail when the Karp-Luby speedup over brute force on the "
            "largest instance drops below this"
        ),
    )
    bench.add_argument(
        "--min-service-speedup", type=float, default=0.0,
        help=(
            "service: fail when the 4-worker throughput speedup over "
            "single-process solve_many drops below this"
        ),
    )
    bench.add_argument(
        "--min-worker-scaling", type=float, default=0.0,
        help=(
            "service: fail when max-worker throughput over 1-worker "
            "throughput on the balanced trace drops below this (enforced "
            "only on machines with at least as many CPU cores as workers; "
            "recorded everywhere)"
        ),
    )
    bench.add_argument(
        "--max-p99-ms", type=float, default=0.0,
        help=(
            "service: fail when any worker count's p99 tick latency on the "
            "balanced trace exceeds this many ms"
        ),
    )
    bench.add_argument(
        "--min-minimization-speedup", type=float, default=0.0,
        help=(
            "query: fail when the minimized-dispatch speedup over unminimized "
            "solving on the redundant-core workload drops below this"
        ),
    )
    bench.add_argument(
        "--max-epsilon-ratio", type=float, default=0.0,
        help=(
            "sampling: fail when |estimate - exact| / exact exceeds this multiple "
            "of epsilon on any instance (1.0 = the (epsilon, delta) contract)"
        ),
    )
    bench.add_argument(
        "--faults", action="store_true",
        help=(
            "service: also run the chaos scenario (a FaultPlan kills one "
            "worker mid-trace) and record a service_recovery section"
        ),
    )
    bench.add_argument(
        "--max-recovery-ms", type=float, default=0.0,
        help=(
            "service: with --faults, fail when the worst worker restart "
            "(detect + respawn + journal replay) exceeds this many ms"
        ),
    )
    bench.add_argument(
        "--min-obs-overhead-ratio", type=float, default=0.0,
        help=(
            "service: fail when the traced replay (trace sample rate 1.0) "
            "keeps less than this ratio of the untraced throughput "
            "(0.95 = at most 5%% overhead)"
        ),
    )
    bench.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help=(
            "service: keep the traced replay's span JSONL at PATH "
            "(for 'repro trace --validate')"
        ),
    )
    bench.add_argument(
        "--output", default=None,
        help=(
            "where to write the JSON report ('-' to skip writing; defaults to "
            "BENCH_hotpaths.json / BENCH_plans.json per suite)"
        ),
    )
    bench.add_argument(
        "--restart", action="store_true",
        help=(
            "service: also run the cold-vs-warm restart scenario (durable "
            "state + seeded disk faults) and record a restart_recovery "
            "section; fails unless the warm restart recompiles zero plans, "
            "answers bit-identically, and every injected corruption is "
            "detected and recovered"
        ),
    )
    bench.add_argument(
        "--smoke", action="store_true",
        help="tiny sizes for CI smoke runs (overrides the size knobs)",
    )
    return parser


def _run_tables(out) -> int:
    out.write("Table 1 - unlabeled setting, disconnected queries\n")
    out.write(format_table(table1(), table_rows(1)) + "\n\n")
    out.write("Table 2 - labeled setting, connected queries\n")
    out.write(format_table(table2(), table_rows(2)) + "\n\n")
    out.write("Table 3 - unlabeled setting, connected queries\n")
    out.write(format_table(table3(), table_rows(3)) + "\n")
    return 0


def _run_classify(args, out) -> int:
    setting = Setting.LABELED if args.setting == "labeled" else Setting.UNLABELED
    cell = classify_cell(args.query_class, args.instance_class, setting)
    out.write(
        f"PHom_{'L' if setting is Setting.LABELED else '#L'}"
        f"({args.query_class}, {args.instance_class}) is {cell.complexity}"
        f"  [{cell.proposition}]\n"
    )
    return 0


def _load_query_argument(value: str):
    """A query CLI argument: an existing JSON file path, or a query string."""
    import os

    from repro.query import parse_query_graph

    if os.path.exists(value):
        return load_query(value)
    if value.lstrip().startswith("{"):
        # Looks like inline JSON, which `solve` does not accept — say so
        # instead of producing a confusing parse-error caret.
        raise ReproError(
            f"query argument {value!r} looks like JSON but is not an existing "
            f"file; pass a path to a query JSON file or a query-language "
            f"string such as 'R(x, y), S(y, z)'"
        )
    if "/" in value or "\\" in value or value.endswith(".json"):
        # Path-shaped (and never valid query syntax): a mistyped file path
        # deserves a file error, not a parse-error caret under the filename.
        raise ReproError(f"query file {value!r} does not exist")
    return parse_query_graph(value)


def _run_solve(args, out, err) -> int:
    try:
        query = _load_query_argument(args.query)
        instance = load_instance(args.instance)
    except (OSError, ValueError, ReproError) as exc:
        err.write(f"error: could not load inputs: {exc}\n")
        return 2
    try:
        solver = PHomSolver(
            allow_brute_force=not args.no_brute_force,
            prefer=args.prefer,
            precision=args.precision,
            epsilon=args.epsilon,
            delta=args.delta,
            seed=args.seed,
            minimize_queries=not args.no_minimize,
        )
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always", IntractableFallbackWarning)
            result = solver.solve(query, instance, method=args.method)
    except (ReproError, ValueError) as exc:
        err.write(f"error: {exc}\n")
        return 1
    out.write(f"probability = {result.probability} ({float(result.probability)})\n")
    out.write(f"method      = {result.method}\n")
    if result.proposition:
        out.write(f"backed by   = {result.proposition}\n")
    out.write(f"query class = {result.query_class}, instance class = {result.instance_class}\n")
    if result.notes and result.method in PHomSolver.SAMPLING_METHODS:
        out.write(f"note: sampled estimate — {result.notes}\n")
    elif "query minimized" in result.notes:
        out.write(f"note: {result.notes[result.notes.index('query minimized'):]}\n")
    if any(issubclass(w.category, IntractableFallbackWarning) for w in caught):
        out.write("note: this query/instance combination is #P-hard; brute force was used\n")
    return 0


def _run_parse(args, out, err) -> int:
    from repro.classification.tables import Setting
    from repro.query import explain_query, format_query, parse_query

    try:
        ir = parse_query(args.query)
        setting = {
            "auto": None,
            "labeled": Setting.LABELED,
            "unlabeled": Setting.UNLABELED,
        }[args.setting]
        explanation = explain_query(
            ir, instance_class=args.instance_class, setting=setting
        )
    except ReproError as exc:
        err.write(f"error: {exc}\n")
        return 1
    normalized = explanation.normalized
    out.write(f"query       = {format_query(ir)}\n")
    out.write(
        f"atoms       = {len(ir.atoms)} atom(s) over "
        f"{len(ir.variables())} variable(s)\n"
    )
    out.write(f"query class = {normalized.original_class}\n")
    if normalized.changed:
        out.write(f"core        = {explanation.format_core()}\n")
        out.write(
            f"core class  = {normalized.core_class} "
            f"(folded {normalized.folded_vertices} variable(s), "
            f"{normalized.folded_edges} atom(s))\n"
        )
    else:
        out.write("core        = (the query is already minimal)\n")
    if args.explain:
        label = "L" if explanation.setting is Setting.LABELED else "#L"
        out.write(
            f"cell        = PHom_{label}({normalized.original_class}, "
            f"{explanation.instance_class}) is "
            f"{explanation.original_cell.complexity} "
            f"[{explanation.original_cell.proposition}]\n"
        )
        if normalized.changed:
            out.write(
                f"core cell   = PHom_{label}({normalized.core_class}, "
                f"{explanation.instance_class}) is "
                f"{explanation.core_cell.complexity} "
                f"[{explanation.core_cell.proposition}]\n"
            )
            if explanation.unlocked:
                out.write(
                    "note: minimization moves this query into a polynomial "
                    "dispatch cell\n"
                )
        out.write(f"method      = {explanation.method}\n")
        if explanation.proposition:
            out.write(f"backed by   = {explanation.proposition}\n")
    return 0


def _write_metrics_snapshot(service, path: str) -> None:
    """Atomically replace ``path`` with the service's metrics snapshot."""
    import json
    import os

    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(service.metrics_snapshot(), handle, sort_keys=True)
    os.replace(tmp, path)


def _run_serve(args, out, err) -> int:
    import time as _time

    from repro.service import QueryService, run_jsonl_session

    try:
        if args.batch == "-":
            lines = sys.stdin
            close_input = None
        else:
            close_input = open(args.batch, "r", encoding="utf-8")
            lines = close_input
    except OSError as exc:
        err.write(f"error: could not open request stream: {exc}\n")
        return 2
    try:
        output = out if args.output == "-" else open(args.output, "w", encoding="utf-8")
    except OSError as exc:
        if close_input is not None:
            close_input.close()
        err.write(f"error: could not open output stream: {exc}\n")
        return 2
    trace_sample_rate = args.trace_sample_rate
    if trace_sample_rate is None:
        trace_sample_rate = 1.0 if args.trace else 0.0
    try:
        with QueryService(
            num_workers=args.workers,
            default_precision=args.precision,
            allow_brute_force=not args.no_brute_force,
            prefer=args.prefer,
            plan_cache_size=args.plan_cache_size,
            result_cache_size=args.result_cache_size,
            state_dir=args.state_dir,
            wal_fsync=args.wal_fsync,
            trace_sample_rate=trace_sample_rate,
            trace_path=args.trace,
            slow_query_ms=args.slow_query_ms,
        ) as service:
            if args.stats and service.recovery is not None:
                recovered = service.recovery
                err.write(
                    f"recovered {recovered['instances_restored']} instance(s) "
                    f"and pre-loaded {recovered['plans_warmed']} plan(s) "
                    f"from {args.state_dir}\n"
                )
            on_batch = None
            if args.metrics_out:
                last_write = [0.0]

                def on_batch() -> None:
                    now = _time.monotonic()
                    if now - last_write[0] >= args.metrics_interval:
                        last_write[0] = now
                        _write_metrics_snapshot(service, args.metrics_out)

            code = run_jsonl_session(lines, output, service, on_batch=on_batch)
            if args.metrics_out:
                _write_metrics_snapshot(service, args.metrics_out)
            if args.stats:
                stats = service.stats()
                err.write(
                    f"served {stats.requests} request(s) in {stats.batches} "
                    f"batch(es): {stats.coalesced} coalesced "
                    f"({stats.dedupe_hit_rate():.0%}), "
                    f"{stats.result_cache_hits()} result-cache hit(s), "
                    f"{stats.updates} update(s)\n"
                )
                err.write(
                    f"reliability: {stats.restarts} worker restart(s), "
                    f"{stats.retries} retried dispatch(es), "
                    f"{stats.deadline_hits} deadline hit(s), "
                    f"{stats.degraded} degraded answer(s)\n"
                )
                for entry in service.slow_queries:
                    err.write(
                        f"slow query: {entry['duration_ms']:.1f} ms "
                        f"id={entry['request_id']} instance={entry['instance']} "
                        f"method={entry['method']} worker={entry['worker']}\n"
                    )
            return code
    finally:
        if close_input is not None:
            close_input.close()
        if output is not out:
            output.close()


def _load_snapshot(path: str):
    """Load a metrics snapshot JSON file ('-' reads stdin)."""
    import json

    if path == "-":
        return json.load(sys.stdin)
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def _run_metrics(args, out, err) -> int:
    from repro.obs.metrics import render_prometheus

    try:
        snapshot = _load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        err.write(f"error: could not load snapshot: {exc}\n")
        return 2
    out.write(render_prometheus(snapshot))
    return 0


def _run_trace(args, out, err) -> int:
    from repro.obs.trace import read_trace, render_trace, validate_trace

    try:
        records = read_trace(args.trace_file)
    except (OSError, ValueError) as exc:
        err.write(f"error: could not read trace: {exc}\n")
        return 2
    if args.validate:
        problems = validate_trace(records)
        if problems:
            for problem in problems:
                err.write(f"invalid: {problem}\n")
            err.write(f"error: {len(problems)} trace violation(s)\n")
            return 1
        out.write(f"ok: {len(records)} span(s), all invariants hold\n")
        return 0
    out.write(render_trace(records) + "\n")
    return 0


def _format_top(snapshot, previous=None, elapsed: Optional[float] = None) -> str:
    """Render one ``repro top`` frame from a metrics snapshot.

    With a ``previous`` snapshot and the ``elapsed`` seconds between the
    two reads, per-route request rates are the deltas — the live view of
    ``--watch``; a single snapshot renders totals with rates left blank.
    """
    from repro.obs.metrics import counter_total, histogram_quantile

    def rate(now: float, before: float) -> str:
        if previous is None or not elapsed:
            return "-"
        return f"{max(0.0, now - before) / elapsed:.1f}/s"

    lines = ["route          requests    req/s     p50 ms    p99 ms"]
    family = (snapshot.get("histograms") or {}).get("repro_request_duration_ms")
    prev_counts: dict = {}
    if previous is not None:
        prev_family = (previous.get("histograms") or {}).get(
            "repro_request_duration_ms"
        )
        if prev_family:
            prev_counts = {
                tuple(labels): data["count"]
                for labels, data in prev_family["samples"]
            }
    if family:
        bounds = family["buckets"]
        for labels, data in sorted(family["samples"]):
            if not data["count"]:
                continue
            route = labels[0] if labels else "?"
            p50 = histogram_quantile(bounds, data["counts"], 0.5)
            p99 = histogram_quantile(bounds, data["counts"], 0.99)
            lines.append(
                f"{route:<14} {data['count']:>8} {rate(data['count'], prev_counts.get(tuple(labels), 0)):>8} "
                f"{p50:>9.2f} {p99:>9.2f}"
            )
    else:
        lines.append("(no request latency samples)")

    def total(name: str) -> int:
        return int(counter_total(snapshot, name))

    requests = total("repro_worker_requests_total")
    cache_hits = total("repro_worker_result_cache_hits_total")
    submitted = total("repro_service_requests_total")
    dispatched = total("repro_service_dispatched_total")
    hit_rate = cache_hits / requests if requests else 0.0
    dedupe = (submitted - dispatched) / submitted if submitted else 0.0
    lines.append(
        f"caches: result-cache hit rate {hit_rate:.0%} "
        f"({cache_hits}/{requests}), dedupe rate {dedupe:.0%} "
        f"({submitted - dispatched}/{submitted} coalesced)"
    )
    lines.append(
        f"sampler: {total('repro_sampler_samples_total')} sample(s) drawn"
    )
    lines.append(
        f"pool: {total('repro_service_steals_total')} steal(s), "
        f"{total('repro_service_restarts_total')} restart(s), "
        f"{total('repro_service_retries_total')} retried dispatch(es), "
        f"{total('repro_service_deadline_hits_total')} deadline hit(s), "
        f"{total('repro_service_degraded_total')} degraded answer(s)"
    )
    return "\n".join(lines)


def _run_top(args, out, err) -> int:
    import time as _time

    try:
        snapshot = _load_snapshot(args.snapshot)
    except (OSError, ValueError) as exc:
        err.write(f"error: could not load snapshot: {exc}\n")
        return 2
    if not args.watch:
        out.write(_format_top(snapshot) + "\n")
        return 0
    iterations = 0
    previous = snapshot
    out.write(_format_top(snapshot) + "\n")
    try:
        while args.iterations <= 0 or iterations < args.iterations:
            _time.sleep(args.interval)
            iterations += 1
            try:
                snapshot = _load_snapshot(args.snapshot)
            except (OSError, ValueError):
                continue  # mid-rewrite or gone; keep the last frame
            out.write("\x1b[2J\x1b[H" if out.isatty() else "\n")
            out.write(
                _format_top(snapshot, previous, elapsed=args.interval) + "\n"
            )
            previous = snapshot
    except KeyboardInterrupt:
        pass
    return 0


def _run_store(args, out, err) -> int:
    import os

    from repro.persist import PlanStore, WriteAheadLog, scan_wal

    state_dir = args.state_dir
    if not os.path.isdir(state_dir):
        err.write(f"error: {state_dir!r} is not a state directory\n")
        return 2
    wal_dir = os.path.join(state_dir, "wal")
    plans_dir = os.path.join(state_dir, "plans")

    if args.action == "verify":
        wal_report = scan_wal(wal_dir)
        out.write(
            f"wal: {wal_report.segments_scanned} segment(s), "
            f"{wal_report.records_replayed} valid record(s), "
            f"{wal_report.torn_tail_bytes} torn tail byte(s), "
            f"{wal_report.corrupt_frames} corrupt frame(s), "
            f"{wal_report.quarantined_segments} bad segment header(s)\n"
        )
        store_report = PlanStore(plans_dir).verify()
        out.write(
            f"plans: {store_report['entries']} entr(ies), "
            f"{store_report['valid']} valid, {store_report['corrupt']} corrupt\n"
        )
        for path, reason in sorted(store_report["failures"].items()):
            out.write(f"  corrupt entry {path}: {reason}\n")
        if wal_report.corruption_detected or store_report["corrupt"]:
            err.write("error: corruption detected\n")
            return 1
        out.write("ok: every checksum verified\n")
        return 0

    if args.action == "compact":
        # Offline compaction mirrors QueryService.compact_state: repair the
        # log on open, fold it (last registration per instance + its
        # last-write-wins updates applied to the snapshot), swap segments.
        import pickle as _pickle

        with WriteAheadLog(wal_dir) as wal:
            before = wal.recovery
            journals = {}
            order = []
            for record in wal.replay():
                if not (isinstance(record, tuple) and len(record) >= 2):
                    continue
                if record[0] == "register" and len(record) == 3:
                    if record[1] in journals:
                        order.remove(record[1])
                    journals[record[1]] = (record[2], [])
                    order.append(record[1])
                elif record[0] == "update" and len(record) == 4:
                    entry = journals.get(record[1])
                    if entry is not None:
                        entry[1].append((record[2], record[3]))
            records = []
            for instance_id in order:
                snapshot, updates = journals[instance_id]
                if updates:
                    instance = _pickle.loads(snapshot)
                    for endpoints, probability in updates:
                        instance.set_probability(endpoints, probability)
                    snapshot = _pickle.dumps(instance)
                records.append(("register", instance_id, snapshot))
            wal.compact(records)
        if before.corruption_detected:
            out.write(
                f"repaired on open: {before.torn_tail_bytes} torn tail "
                f"byte(s), {before.corrupt_frames} corrupt frame(s), "
                f"{before.quarantined_segments} quarantined segment(s)\n"
            )
        out.write(
            f"compacted {before.records_replayed} record(s) into "
            f"{len(records)} snapshot(s)\n"
        )
        return 0

    # inspect
    wal_report = scan_wal(wal_dir)
    out.write(
        f"wal: {wal_report.segments_scanned} segment(s), "
        f"{wal_report.records_replayed} record(s)"
        + (" [corruption detected]\n" if wal_report.corruption_detected else "\n")
    )
    rows = PlanStore(plans_dir).inspect()
    out.write(f"plans: {len(rows)} entr(ies)\n")
    for row in rows:
        out.write(
            f"  {row['digest'][:12]}  method={row['method']}  "
            f"namespace={row['namespace']}  {row['bytes']} bytes\n"
        )
    return 0


def _run_bench(args, out, err) -> int:
    if args.suite == "plans":
        return _run_bench_plans(args, out, err)
    if args.suite == "sampling":
        return _run_bench_sampling(args, out, err)
    if args.suite == "service":
        return _run_bench_service(args, out, err)
    if args.suite == "query":
        return _run_bench_query(args, out, err)
    from repro.bench import format_report, run_benchmarks, write_report

    if args.smoke:
        instance_size, queries, repeat = 12, 6, 1
    else:
        instance_size, queries, repeat = args.instance_size, args.queries, args.repeat
    try:
        report = run_benchmarks(
            instance_size=instance_size, num_queries=queries, repeat=repeat
        )
    except AssertionError as exc:
        err.write(f"error: benchmark cross-check failed: {exc}\n")
        return 1
    out.write(format_report(report) + "\n")
    output = args.output or "BENCH_hotpaths.json"
    if output != "-":
        write_report(report, output)
        out.write(f"report written to {output}\n")
    return 0


def _run_bench_plans(args, out, err) -> int:
    from repro.bench_plans import (
        check_plan_thresholds,
        format_plan_report,
        run_plan_benchmarks,
        write_plan_report,
    )

    if args.smoke:
        instance_size, queries, rounds, updates = 12, 6, 2, 30
    else:
        instance_size, queries, rounds, updates = (
            args.instance_size, args.queries, args.rounds, args.updates,
        )
    try:
        report = run_plan_benchmarks(
            instance_size=instance_size,
            num_queries=queries,
            rounds=rounds,
            updates=updates,
        )
        check_plan_thresholds(
            report,
            min_reuse_speedup=args.min_reuse_speedup,
            min_incremental_speedup=args.min_incremental_speedup,
            min_tape_speedup=args.min_tape_speedup,
        )
    except AssertionError as exc:
        err.write(f"error: plan benchmark check failed: {exc}\n")
        return 1
    out.write(format_plan_report(report) + "\n")
    output = args.output or "BENCH_plans.json"
    if output != "-":
        write_plan_report(report, output)
        out.write(f"report written to {output}\n")
    return 0


def _run_bench_sampling(args, out, err) -> int:
    from repro.bench_sampling import (
        check_sampling_thresholds,
        format_sampling_report,
        run_sampling_benchmarks,
        write_sampling_report,
    )

    try:
        report = run_sampling_benchmarks(smoke=args.smoke)
        check_sampling_thresholds(
            report,
            min_speedup=args.min_sampling_speedup,
            max_epsilon_ratio=args.max_epsilon_ratio,
        )
    except AssertionError as exc:
        err.write(f"error: sampling benchmark check failed: {exc}\n")
        return 1
    out.write(format_sampling_report(report) + "\n")
    output = args.output or "BENCH_sampling.json"
    if output != "-":
        write_sampling_report(report, output)
        out.write(f"report written to {output}\n")
    return 0


def _run_bench_service(args, out, err) -> int:
    from repro.bench_service import (
        check_service_thresholds,
        format_service_report,
        run_service_benchmarks,
        write_service_report,
    )

    try:
        report = run_service_benchmarks(
            smoke=args.smoke, faults=args.faults, restart=args.restart,
            trace_out=args.trace_out,
        )
        check_service_thresholds(
            report,
            min_speedup=args.min_service_speedup,
            max_recovery_ms=args.max_recovery_ms,
            min_worker_scaling=args.min_worker_scaling,
            max_p99_ms=args.max_p99_ms,
            min_obs_overhead_ratio=args.min_obs_overhead_ratio,
        )
    except AssertionError as exc:
        err.write(f"error: service benchmark check failed: {exc}\n")
        return 1
    out.write(format_service_report(report) + "\n")
    output = args.output or "BENCH_service.json"
    if output != "-":
        write_service_report(report, output)
        out.write(f"report written to {output}\n")
    return 0


def _run_bench_query(args, out, err) -> int:
    from repro.bench_query import (
        check_query_thresholds,
        format_query_report,
        run_query_benchmarks,
        write_query_report,
    )

    try:
        report = run_query_benchmarks(smoke=args.smoke)
        check_query_thresholds(
            report, min_minimization_speedup=args.min_minimization_speedup
        )
    except AssertionError as exc:
        err.write(f"error: query benchmark check failed: {exc}\n")
        return 1
    out.write(format_query_report(report) + "\n")
    output = args.output or "BENCH_query.json"
    if output != "-":
        write_query_report(report, output)
        out.write(f"report written to {output}\n")
    return 0


def main(argv: Optional[List[str]] = None, out=None, err=None) -> int:
    """Entry point; returns a process exit code."""
    out = out or sys.stdout
    err = err or sys.stderr
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.command == "tables":
        return _run_tables(out)
    if args.command == "classify":
        return _run_classify(args, out)
    if args.command == "solve":
        return _run_solve(args, out, err)
    if args.command == "parse":
        return _run_parse(args, out, err)
    if args.command == "serve":
        return _run_serve(args, out, err)
    if args.command == "metrics":
        return _run_metrics(args, out, err)
    if args.command == "trace":
        return _run_trace(args, out, err)
    if args.command == "top":
        return _run_top(args, out, err)
    if args.command == "store":
        return _run_store(args, out, err)
    if args.command == "bench":
        return _run_bench(args, out, err)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
