"""The dispatching PHom solver implementing the paper's classification.

:class:`PHomSolver` recognises which classes the query and the instance
belong to (Figure 2), routes the computation to the most general applicable
tractable algorithm (Propositions 3.6, 4.10, 4.11, 5.4/5.5, combined with
Lemma 3.7 for disconnected instances), and only falls back to exponential
brute force — with an explicit :class:`~repro.exceptions.IntractableFallbackWarning` —
when the combination is #P-hard according to Tables 1–3 (or when asked to).

The convenience function :func:`phom_probability` returns just the
probability; :meth:`PHomSolver.solve` additionally reports which algorithm
was used and which proposition backs it, which the benchmark harness uses to
regenerate the tables.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.approx import ApproxParams, karp_luby_probability, naive_phom_estimate
from repro.exceptions import ClassConstraintError, IntractableFallbackWarning, ReproError
from repro.graphs.classes import (
    GraphClass,
    graph_class_of,
    graph_in_class,
    is_one_way_path,
)
from repro.graphs.builders import path_query_labels, unlabeled_path
from repro.graphs.digraph import DiGraph
from repro.lineage.builders import match_lineage
from repro.numeric import EXACT, FAST, Number, NumericContext, resolve_context
from repro.obs.trace import current_tracer
from repro.probability.brute_force import brute_force_phom, brute_force_phom_over_matches
from repro.probability.prob_graph import ProbabilisticGraph
from repro.query.minimize import (
    normalize as normalize_query,
    query_core,
    validate_query_graph,
)
from repro.query.parser import as_query_graph
from repro.core.disconnected import (
    cached_level_mapping,
    phom_on_disconnected_instance,
    phom_unlabeled_on_union_dwt,
)
from repro.core.labeled_dwt import compile_labeled_path_on_dwt, phom_labeled_path_on_dwt
from repro.core.labeled_2wp import compile_connected_on_2wp, phom_connected_on_2wp
from repro.core.unlabeled_pt import (
    collapse_query_to_path_length,
    compile_path_circuit_on_polytree,
    compile_path_dp_on_polytree,
    phom_unlabeled_path_on_polytree,
    phom_unlabeled_tree_query_on_polytree,
)
from repro.plan import (
    BRUTE_FORCE_FALLBACK_MESSAGE,
    CompiledPlan,
    ComponentPlan,
    ConstantPlan,
    FallbackPlan,
    PlanCache,
    canonical_query_key,
    CircuitComponentEvaluator,
    DWTPathEvaluator,
    IntervalEvaluator,
    PolytreeDPEvaluator,
)

PrecisionLike = Union[str, NumericContext, None]

#: Queries may be given as graphs or as query-language strings
#: (``"R(x, y), S(y, z)"``, parsed by :mod:`repro.query`).
QueryLike = Union[DiGraph, str]

#: Marker prefix of the minimization provenance in ``PHomResult.notes``
#: (produced by :meth:`repro.query.NormalizedQuery.describe`).
MINIMIZATION_NOTE_PREFIX = "query minimized to its homomorphic core"


def requalify_result(
    result: "PHomResult", query: DiGraph, minimize: bool = True
) -> "PHomResult":
    """Re-describe a (possibly shared) result for the query actually asked.

    Core-keyed deduplication — :meth:`PHomSolver.solve_many`, the plan
    cache, and the serving layer's coalescing and result caches — lets one
    computation answer several *equivalent* queries.  The probability,
    method and proposition are shared by construction, but the reported
    ``query_class`` and the minimization provenance belong to the
    individual spelling: this strips any previous spelling's minimization
    note, restores ``query_class`` to the class of ``query`` as written,
    and (when ``minimize``) appends ``query``'s own fold provenance.
    Mutates and returns ``result``.
    """
    notes = result.notes
    index = notes.find(MINIMIZATION_NOTE_PREFIX)
    if index != -1:
        notes = notes[:index].rstrip().rstrip(";")
    result.query_class = graph_class_of(query)
    if minimize:
        try:
            info = normalize_query(query)
        except ClassConstraintError:
            # Degenerate (self-loop-only) queries answered by an explicit
            # enumeration/sampling method carry no minimization provenance.
            info = None
        if info is not None and info.changed:
            note = info.describe()
            notes = f"{notes}; {note}" if notes else note
    result.notes = notes
    return result


#: The error for #P-hard cells when neither brute force nor sampling may run.
_HARD_CELL_MESSAGE = (
    "no polynomial-time algorithm applies to this query/instance combination "
    "(it is #P-hard by the classification of Tables 1-3) and brute force is "
    "disabled; use precision='approx' to sample it"
)


def _is_approx(precision: PrecisionLike) -> bool:
    return isinstance(precision, str) and precision == "approx"


@dataclass
class PHomResult:
    """The result of a PHom computation, with provenance of the method used.

    ``probability`` is an exact :class:`~fractions.Fraction` under the
    default ``precision="exact"`` contract and a ``float`` under
    ``precision="float"``.
    """

    probability: Number
    method: str
    proposition: Optional[str]
    query_class: GraphClass
    instance_class: GraphClass
    labeled: bool
    notes: str = ""

    def __float__(self) -> float:  # pragma: no cover - convenience
        return float(self.probability)


class PHomSolver:
    """Dispatcher for the probabilistic homomorphism problem.

    Parameters
    ----------
    allow_brute_force:
        Whether #P-hard combinations may fall back to exponential
        possible-world enumeration (with a warning).  When false, such
        combinations raise :class:`~repro.exceptions.ClassConstraintError`.
    prefer:
        ``"dp"`` (default) to evaluate the tractable cases with the direct
        dynamic programs, ``"lineage"`` / ``"automaton"`` to use the paper's
        lineage- and automaton-based constructions.  Under the plan-backed
        automatic dispatch this selects the *compiled structure* of the
        polytree routes (``"lineage"``/``"automaton"`` → the tree-automaton
        d-DNNF circuit, which also enables incremental ``plan.update``);
        the 2WP/DWT routes always compile their DP skeletons, whose exact
        results are identical to the lineage constructions.  Explicit
        ``method=`` names still run the lineage routes directly.
    precision:
        ``"exact"`` (default) computes with :class:`~fractions.Fraction` —
        results are bit-identical exact rationals.  ``"float"`` computes
        with native floats, which is much faster on large instances and
        agrees with exact mode to within double-precision rounding.
        ``"approx"`` keeps the tractable cells on the (exact-answer) float
        dynamic programs but routes the #P-hard combinations to the
        Karp–Luby ``(ε, δ)`` sampler of :mod:`repro.approx` instead of
        exponential brute force.
    plan_cache_size:
        Capacity of the solver's :class:`~repro.plan.PlanCache` (compiled
        query plans keyed on canonical query form + instance identity).
        ``0`` disables plan caching entirely: every ``solve`` recompiles the
        structural phase, reproducing the pre-plan per-call behaviour.
    epsilon / delta:
        The sampling accuracy contract: relative error at most ``epsilon``
        with probability at least ``1 − delta`` (Karp–Luby; the bound is
        additive for the explicit ``monte-carlo-worlds`` method).  Only
        consulted when sampling actually runs.
    seed:
        Seed for the sampling RNG.  ``None`` (default) draws fresh entropy
        per estimate; pass an integer for bit-reproducible estimates.
    minimize_queries:
        Whether the automatic dispatch minimizes queries to their
        homomorphic core (:func:`repro.query.query_core`) before
        classification (default ``True``).  Minimization never changes the
        answer (the core is an equivalent query), but it can move a query
        written with redundant atoms from a #P-hard cell into a polynomial
        dispatch route, and it makes the plan cache and the serving layer
        coalesce syntactically distinct queries with equal cores.  ``False``
        classifies every query exactly as written (the pre-minimization
        behaviour, kept for benchmarking and differential testing).
    plan_store:
        An optional persistent tier behind the plan cache: a
        :class:`~repro.persist.PlanStore` (or a directory path, opened as
        one).  Freshly compiled plans are written through to the store;
        an in-memory cache miss falls through to it and *rebinds* the
        stored plan to the live instance instead of recompiling, so a
        restarted process warm-starts its hot set from disk.  Entries are
        namespaced by the compile-relevant solver knobs
        (``allow_brute_force`` / ``prefer`` / ``minimize_queries``), so
        differently configured solvers never exchange plans.  Requires
        ``plan_cache_size > 0``.
    """

    def __init__(
        self,
        allow_brute_force: bool = True,
        prefer: str = "dp",
        precision: PrecisionLike = "exact",
        plan_cache_size: int = 128,
        epsilon: float = 0.05,
        delta: float = 0.01,
        seed: Optional[int] = None,
        minimize_queries: bool = True,
        plan_store=None,
    ) -> None:
        if prefer not in ("dp", "lineage", "automaton"):
            raise ValueError("prefer must be one of 'dp', 'lineage', 'automaton'")
        self.allow_brute_force = allow_brute_force
        self.prefer = prefer
        self.minimize_queries = minimize_queries
        self.approx_params = ApproxParams(epsilon=epsilon, delta=delta, seed=seed)
        self.approximate = _is_approx(precision)
        self.context = FAST if self.approximate else resolve_context(precision)
        self._plan_store = self._resolve_plan_store(plan_store)
        self._plan_cache = self._build_plan_cache(plan_cache_size)

    @staticmethod
    def _resolve_plan_store(plan_store):
        """Accept a ready store, a directory path, or ``None``."""
        if plan_store is None or not isinstance(plan_store, str):
            return plan_store
        # Imported lazily: repro.persist depends on repro.plan, and keeping
        # the import out of module scope keeps the solver importable first.
        from repro.persist import PlanStore

        return PlanStore(plan_store)

    def _build_plan_cache(self, size: int) -> Optional[PlanCache]:
        if self._plan_store is not None:
            if size <= 0:
                raise ValueError("a persistent plan store needs plan_cache_size > 0")
            from repro.persist import PersistentPlanCache

            return PersistentPlanCache(
                maxsize=size,
                plan_store=self._plan_store,
                namespace=self._plan_namespace(),
            )
        return PlanCache(size) if size > 0 else None

    def _plan_namespace(self) -> str:
        """The store namespace: every knob that shapes *compiled structure*."""
        return (
            f"brute={int(self.allow_brute_force)};prefer={self.prefer};"
            f"minimize={int(self.minimize_queries)}"
        )

    @property
    def plan_cache(self) -> Optional[PlanCache]:
        """The solver's compiled-plan cache (``None`` when disabled)."""
        return self._plan_cache

    @property
    def plan_store(self):
        """The persistent plan store behind the cache (``None`` when absent)."""
        return self._plan_store

    def __getstate__(self) -> dict:
        """Pickle the configuration, not the cache contents.

        Plan-cache entries are keyed on instance object *identity*, which
        does not survive a process boundary, so an unpickled solver starts
        with an empty cache of the same capacity.  This is what lets the
        :mod:`repro.service` workers be configured by shipping one solver
        prototype instead of a bag of keyword arguments.  The persistent
        plan store (holding only a path and counters, never file handles)
        *does* travel, so an unpickled worker solver warms from the same
        store directory.
        """
        state = self.__dict__.copy()
        cache = state.pop("_plan_cache")
        state["_plan_cache_size"] = cache.maxsize if cache is not None else 0
        return state

    def __setstate__(self, state: dict) -> None:
        size = state.pop("_plan_cache_size")
        self.__dict__.update(state)
        self._plan_cache = self._build_plan_cache(size)

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def probability(
        self,
        query: QueryLike,
        instance: ProbabilisticGraph,
        method: str = "auto",
        precision: PrecisionLike = None,
    ) -> Number:
        """``Pr(query ⇝ instance)`` (see :meth:`solve` for the full result)."""
        return self.solve(query, instance, method=method, precision=precision).probability

    def solve(
        self,
        query: QueryLike,
        instance: ProbabilisticGraph,
        method: str = "auto",
        precision: PrecisionLike = None,
    ) -> PHomResult:
        """Compute ``Pr(query ⇝ instance)`` and report the algorithm used.

        ``query`` is a :class:`~repro.graphs.digraph.DiGraph` or a
        query-language string such as ``"R(x, y), S(y, z)"`` (see
        :mod:`repro.query`).  ``method`` is ``"auto"`` (recommended) or one
        of the explicit algorithm names listed in :meth:`available_methods`
        — the automatic dispatch minimizes the query to its homomorphic
        core first (unless the solver was built with
        ``minimize_queries=False``), while explicit methods run on the
        query exactly as written.  ``precision`` overrides the solver's
        numeric backend for this call (including ``"approx"``, which
        samples the #P-hard cells with the solver's ``epsilon`` / ``delta``
        / ``seed``).
        """
        query = as_query_graph(query)
        context, approx = self._resolve_precision(precision)
        self._validate_inputs(query, instance)
        if method == "auto":
            # Self-loop-only degenerate queries belong to no class of
            # Figure 2, so the classifying dispatch rejects them up front
            # with a clear error (PR 5 contract); the explicit
            # enumeration/sampling methods below need no class recognition
            # and still accept them.
            validate_query_graph(query)
            return self._solve_auto(query, instance, context, approx)
        if method in self.SAMPLING_METHODS:
            # The samplers always run on floats (a precision override is
            # meaningless for an estimate); report their provenance — sample
            # count, (ε, δ), seed — just like the auto-dispatch approx path.
            estimate = self._sample(method, query, instance)
            return self._result(
                query, instance, estimate.value, method,
                proposition=None, notes=estimate.describe(),
            )
        dispatch = self._explicit_methods(context)
        if method not in dispatch:
            known = sorted(dispatch) + list(self.SAMPLING_METHODS)
            raise ValueError(
                f"unknown method {method!r}; expected 'auto' or one of {sorted(known)}"
            )
        probability = dispatch[method](query, instance)
        return self._result(query, instance, probability, method, proposition=None)

    def solve_many(
        self,
        queries: Iterable[QueryLike],
        instance: ProbabilisticGraph,
        method: str = "auto",
        precision: PrecisionLike = None,
    ) -> List[PHomResult]:
        """Answer a batch of queries against one shared instance.

        Returns one :class:`PHomResult` per query, identical to calling
        :meth:`solve` in a loop — but the instance-side work (class
        recognition, connectivity, the component split and its probability
        tables) is performed once and shared across the whole batch, which
        is the intended entry point for serving many queries against the
        same probabilistic instance.

        Equivalent queries (equal canonical form, see
        :func:`repro.plan.canonical_query_key` — under the default
        ``minimize_queries=True`` this compares homomorphic *cores*, so
        syntactically distinct but equivalent queries dedupe too) are
        deduplicated: each distinct form is compiled and evaluated once, and
        duplicates receive copies of its result.
        """
        queries = [as_query_graph(query) for query in queries]
        if queries:
            # Warm the shared instance-side caches once, outside the loop,
            # so the first query does not pay for them alone (the values are
            # memoised on the frozen instance graph / the instance itself).
            graph = instance.graph
            if graph.num_vertices() > 0:
                graph_class_of(graph)
                for cls in (
                    GraphClass.UNION_TWO_WAY_PATH,
                    GraphClass.UNION_DOWNWARD_TREE,
                    GraphClass.UNION_POLYTREE,
                ):
                    graph_in_class(graph, cls)
                if not graph.is_weakly_connected():
                    instance.connected_components()
        solved: Dict[object, PHomResult] = {}
        results: List[PHomResult] = []
        # Explicit (non-auto) methods dispatch on the query exactly as
        # written, so equivalent-but-distinct spellings must not share a
        # result there — only the minimizing auto route may dedupe on cores.
        dedupe_on_cores = self.minimize_queries and method == "auto"
        for query in queries:
            key = canonical_query_key(query, minimize=dedupe_on_cores)
            cached = solved.get(key)
            if cached is None:
                cached = self.solve(query, instance, method=method, precision=precision)
                solved[key] = cached
                results.append(cached)
            else:
                # A copy of the shared computation, re-described for *this*
                # spelling (its own query class and, on the minimizing auto
                # route only, its own minimization provenance).
                results.append(
                    requalify_result(replace(cached), query, dedupe_on_cores)
                )
        return results

    #: Explicit method names answered by the samplers (float estimates with
    #: (ε, δ) provenance in ``result.notes``) rather than by an exact
    #: algorithm.  Public: the CLI keys its "sampled estimate" note on it.
    SAMPLING_METHODS = ("karp-luby", "monte-carlo-worlds")

    @classmethod
    def available_methods(cls) -> list:
        """The explicit method names accepted by :meth:`solve`."""
        return sorted(list(cls()._explicit_methods()) + list(cls.SAMPLING_METHODS))

    # ------------------------------------------------------------------
    # validation and bookkeeping
    # ------------------------------------------------------------------
    def _resolve_precision(
        self, precision: PrecisionLike
    ) -> Tuple[NumericContext, Optional[ApproxParams]]:
        """The numeric context and, in approx mode, the sampling contract."""
        if precision is None:
            return self.context, (self.approx_params if self.approximate else None)
        if _is_approx(precision):
            return FAST, self.approx_params
        return resolve_context(precision), None

    @staticmethod
    def _validate_inputs(query: DiGraph, instance: ProbabilisticGraph) -> None:
        if query.num_vertices() == 0:
            raise ReproError("the query graph must have at least one vertex")
        if instance.graph.num_vertices() == 0:
            raise ReproError("the instance graph must have at least one vertex")

    @staticmethod
    def _is_effectively_unlabeled(query: DiGraph, instance: ProbabilisticGraph) -> bool:
        return len(query.labels() | instance.graph.labels()) <= 1

    def _result(
        self,
        query: DiGraph,
        instance: ProbabilisticGraph,
        probability: Number,
        method: str,
        proposition: Optional[str],
        notes: str = "",
    ) -> PHomResult:
        return PHomResult(
            probability=probability,
            method=method,
            proposition=proposition,
            query_class=graph_class_of(query),
            instance_class=graph_class_of(instance.graph),
            labeled=not self._is_effectively_unlabeled(query, instance),
            notes=notes,
        )

    # ------------------------------------------------------------------
    # explicit methods
    # ------------------------------------------------------------------
    def _explicit_methods(
        self, context: NumericContext = EXACT
    ) -> Dict[str, Callable[[DiGraph, ProbabilisticGraph], Number]]:
        return {
            "brute-force-worlds": lambda q, i: brute_force_phom(q, i, context),
            "brute-force-matches": lambda q, i: brute_force_phom_over_matches(q, i, context),
            "generic-lineage": lambda q, i: self._generic_lineage(q, i, context),
            "labeled-dwt-dp": lambda q, i: self._per_component(
                q, i, lambda qq, ii: phom_labeled_path_on_dwt(qq, ii, method="dp", context=context),
                context,
            ),
            "labeled-dwt-lineage": lambda q, i: self._per_component(
                q, i,
                lambda qq, ii: phom_labeled_path_on_dwt(qq, ii, method="lineage", context=context),
                context,
            ),
            "connected-2wp-dp": lambda q, i: self._per_component(
                q, i, lambda qq, ii: phom_connected_on_2wp(qq, ii, method="dp", context=context),
                context,
            ),
            "connected-2wp-lineage": lambda q, i: self._per_component(
                q, i,
                lambda qq, ii: phom_connected_on_2wp(qq, ii, method="lineage", context=context),
                context,
            ),
            "graded-collapse": lambda q, i: phom_unlabeled_on_union_dwt(
                q, i, method=self._polytree_method(), context=context
            ),
            "polytree-automaton": lambda q, i: self._union_polytree(q, i, "automaton", context),
            "polytree-dp": lambda q, i: self._union_polytree(q, i, "dp", context),
        }

    def _sample(self, method: str, query: DiGraph, instance: ProbabilisticGraph):
        """Run one of the explicit samplers under the solver's (ε, δ, seed)."""
        if method == "karp-luby":
            # Go through the plan cache: repeated estimates against the same
            # pair reuse the memoised match lineage instead of re-running the
            # homomorphism enumeration per call.
            plan = self._plan_for(query, instance, allow_fallback=True)
            if isinstance(plan, FallbackPlan):
                return plan.estimate(params=self.approx_params)
            # Tractable (or trivial) combination sampled on explicit request:
            # build the lineage directly, outside the plan machinery.
            return karp_luby_probability(
                match_lineage(query, instance),
                FAST.instance_probabilities(instance),
                self.approx_params,
            )
        return naive_phom_estimate(query, instance, self.approx_params)

    @staticmethod
    def _generic_lineage(
        query: DiGraph, instance: ProbabilisticGraph, context: NumericContext = EXACT
    ) -> Number:
        lineage = match_lineage(query, instance)
        return lineage.probability(
            context.instance_probabilities(instance), context=context
        )

    @staticmethod
    def _per_component(
        query: DiGraph,
        instance: ProbabilisticGraph,
        solver: Callable[[DiGraph, ProbabilisticGraph], Number],
        context: NumericContext = EXACT,
    ) -> Number:
        """Apply a connected-instance solver through Lemma 3.7 when needed."""
        if instance.graph.is_weakly_connected():
            return solver(query, instance)
        return phom_on_disconnected_instance(query, instance, solver, context)

    def _polytree_method(self) -> str:
        return "dp" if self.prefer == "dp" else "automaton"

    def _union_polytree(
        self,
        query: DiGraph,
        instance: ProbabilisticGraph,
        method: str,
        context: NumericContext = EXACT,
    ) -> Number:
        # Collapse the (possibly disconnected) ⊔DWT query to the equivalent
        # connected one-way path (Proposition 5.5), then apply Lemma 3.7.
        length = collapse_query_to_path_length(query)
        collapsed = unlabeled_path(length)
        return self._per_component(
            collapsed,
            instance,
            lambda _q, component: phom_unlabeled_path_on_polytree(
                length, component, method=method, context=context
            ),
            context,
        )

    # ------------------------------------------------------------------
    # automatic dispatch (the classification of Tables 1-3), plan-backed
    # ------------------------------------------------------------------
    def _solve_auto(
        self,
        query: DiGraph,
        instance: ProbabilisticGraph,
        context: NumericContext = EXACT,
        approx: Optional[ApproxParams] = None,
    ) -> PHomResult:
        plan = self._plan_for(
            query, instance, allow_fallback=True if approx is not None else None
        )
        if isinstance(plan, FallbackPlan):
            if approx is not None:
                # Approx mode: the #P-hard cell is answered by the Karp–Luby
                # sampler over the plan's match lineage, not by enumeration.
                estimate = plan.estimate(params=approx)
                result = self._plan_result(plan, estimate.value)
                result.method = "karp-luby"
                result.notes = estimate.describe()
                return self._annotate_minimization(result, query)
            if not self.allow_brute_force:
                # Reached on approx-mode solvers answering an exact per-call
                # precision override; cached-plan cross-talk is already
                # handled inside _plan_for.
                raise ClassConstraintError(_HARD_CELL_MESSAGE)
            # Warn from here so the message is attributed to the caller of
            # solve(), exactly as the pre-plan dispatcher did.
            warnings.warn(
                BRUTE_FORCE_FALLBACK_MESSAGE, IntractableFallbackWarning, stacklevel=3
            )
            probability = plan.evaluate(precision=context, _warn=False)
        else:
            probability = plan.evaluate(precision=context)
        return self._annotate_minimization(self._plan_result(plan, probability), query)

    def _annotate_minimization(self, result: PHomResult, query: DiGraph) -> PHomResult:
        """Report a minimized solve against the *original* query.

        The plan (and therefore ``result``) describes the homomorphic core
        the dispatcher actually ran on; when minimization changed the query,
        the result's ``query_class`` is restored to the class of the query
        as written and the fold provenance is appended to ``notes``.
        """
        if not self.minimize_queries:
            return result
        return requalify_result(result, query, minimize=True)

    @staticmethod
    def _plan_result(plan: CompiledPlan, probability: Number) -> PHomResult:
        return PHomResult(
            probability=probability,
            method=plan.method,
            proposition=plan.proposition,
            query_class=plan.query_class,
            instance_class=plan.instance_class,
            labeled=plan.labeled,
            notes=plan.notes,
        )

    # ------------------------------------------------------------------
    # plan compilation (the structural phase, done once per (query, instance))
    # ------------------------------------------------------------------
    def compile(self, query: QueryLike, instance: ProbabilisticGraph) -> CompiledPlan:
        """Compile a reusable :class:`~repro.plan.CompiledPlan` for the pair.

        The plan captures everything probability-independent — the dispatch
        verdict and the structural skeleton of the chosen algorithm — and is
        served from the solver's :class:`~repro.plan.PlanCache` when an
        equivalent query was compiled against the same instance before.
        Under the default ``minimize_queries=True`` the plan is compiled for
        the query's homomorphic core (an equivalent query with the same
        probability on every instance), so ``plan.query`` may be smaller
        than the query passed in.  ``plan.evaluate(...)`` then runs only
        arithmetic; ``plan.update(edge, p)`` re-evaluates after a
        single-edge change.

        Because equivalent compiles return the *same cached object*, the
        serving table maintained by ``update`` is shared by everyone holding
        that plan; callers needing an independent serving session should
        ``reset_serving()`` the plan or use a solver with
        ``plan_cache_size=0``.
        """
        query = as_query_graph(query)
        self._validate_inputs(query, instance)
        validate_query_graph(query)
        return self._plan_for(query, instance)

    def tape_for(self, query: QueryLike, instance: ProbabilisticGraph):
        """The pair's compiled plan lowered to a flat :class:`~repro.tape.PlanTape`.

        Compiles (or retrieves from the cache) the plan exactly as
        :meth:`compile` does, then lowers its arithmetic half to a tape on
        first request and memoises it on the plan.  Unlike calling
        ``plan.tape()`` directly, this entry point also notifies the plan
        cache (:meth:`~repro.plan.PlanCache.note_tape`): the lowering is
        accounted as a *tape* compile — never as a plan compile — and a
        persistent cache tier refreshes the plan's store entry so the tape
        is durable alongside its plan.  Raises
        :class:`~repro.exceptions.PlanError` for brute-force fallback
        plans, which have no arithmetic half to lower.
        """
        return self._tape_plan_for(query, instance).tape()

    def _tape_plan_for(
        self, query: QueryLike, instance: ProbabilisticGraph
    ) -> CompiledPlan:
        """The cached plan with its tape compiled (and accounted/persisted)."""
        query = as_query_graph(query)
        self._validate_inputs(query, instance)
        validate_query_graph(query)
        core = query_core(query) if self.minimize_queries else query
        plan = self._plan_for(core, instance)
        if not plan.has_tape():
            plan.tape()
            if self._plan_cache is not None:
                key = canonical_query_key(core, minimize=self.minimize_queries)
                self._plan_cache.note_tape(key, instance, plan)
        return plan

    def evaluate_many(
        self,
        query: QueryLike,
        instance: ProbabilisticGraph,
        batches: Sequence[Optional[dict]],
        precision: PrecisionLike = None,
        backend: str = "auto",
    ) -> List[Number]:
        """Answer one query under a whole batch of probability valuations.

        Each entry of ``batches`` is an override mapping exactly as in
        :meth:`~repro.plan.CompiledPlan.evaluate` (``None`` / ``{}`` for
        the instance's live table); the result list is index-aligned.  The
        batch runs in one structural pass over the plan's flat tape (see
        :meth:`tape_for` — compiled and cached on first use), vectorizing
        every arithmetic operation across the valuations, which is the
        serving layer's bulk re-evaluation fast path.  ``precision``
        selects the numeric backend as in :meth:`solve` (``"approx"`` is
        rejected: batched evaluation is an exact/float contract);
        ``backend`` is forwarded to
        :meth:`~repro.tape.PlanTape.evaluate_many`.
        """
        if _is_approx(precision):
            raise ReproError(
                "evaluate_many computes exact/float probabilities; "
                "precision='approx' does not apply to batched tape evaluation"
            )
        plan = self._tape_plan_for(query, instance)
        context, _approx = self._resolve_precision(precision)
        return plan.evaluate_many(batches, precision=context, backend=backend)

    def _plan_for(
        self,
        query: DiGraph,
        instance: ProbabilisticGraph,
        allow_fallback: Optional[bool] = None,
    ) -> CompiledPlan:
        if allow_fallback is None:
            # Approx-mode solvers never brute-force, but they do need the
            # fallback plan (it carries the lineage the sampler runs on).
            allow_fallback = self.allow_brute_force or self.approximate
        if self.minimize_queries:
            # The class-aware rewriting pass: classification and compilation
            # run on the homomorphic core, an equivalent (often smaller, and
            # sometimes polynomially dispatchable) query.  query_core (not
            # normalize) so the explicit sampling path, which validates
            # nothing, keeps accepting degenerate queries it can answer.
            query = query_core(query)
        if self._plan_cache is None:
            with current_tracer().span("plan.compile") as span:
                plan = self._compile_plan(query, instance, allow_fallback)
                if span:
                    span.attrs["method"] = plan.method
                    span.attrs["cached"] = False
            return plan
        key = canonical_query_key(query, minimize=self.minimize_queries)
        with current_tracer().span("plan.lookup") as span:
            plan = self._plan_cache.lookup(key, instance)
            if span:
                span.attrs["hit"] = plan is not None
        if plan is None:
            with current_tracer().span("plan.compile") as span:
                plan = self._compile_plan(query, instance, allow_fallback)
                if span:
                    span.attrs["method"] = plan.method
            self._plan_cache.store(key, instance, plan)
        elif isinstance(plan, FallbackPlan) and not allow_fallback:
            # A FallbackPlan cached by an approx call must not change what a
            # non-sampling caller observes: same error as on a cold cache.
            raise ClassConstraintError(_HARD_CELL_MESSAGE)
        return plan

    def _compile_plan(
        self, query: DiGraph, instance: ProbabilisticGraph, allow_fallback: bool = True
    ) -> CompiledPlan:
        graph = instance.graph
        unlabeled = self._is_effectively_unlabeled(query, instance)
        metadata = dict(
            query=query,
            instance=instance,
            labeled=not unlabeled,
            default_context=self.context,
        )

        # Trivial cases first: edge-less queries always hold, and a query
        # using a label absent from the instance never does.
        if query.num_edges() == 0:
            return ConstantPlan(
                True, method="trivial-edgeless-query", proposition=None,
                notes="a query without edges maps anywhere", **metadata,
            )
        if not query.labels() <= graph.labels():
            return ConstantPlan(
                False, method="trivial-label-mismatch", proposition=None,
                notes="some query label does not appear in the instance", **metadata,
            )

        query_connected = query.is_weakly_connected()
        instance_union_2wp = graph_in_class(graph, GraphClass.UNION_TWO_WAY_PATH)
        instance_union_dwt = graph_in_class(graph, GraphClass.UNION_DOWNWARD_TREE)
        instance_union_pt = graph_in_class(graph, GraphClass.UNION_POLYTREE)

        if query_connected:
            if instance_union_2wp:
                components = self._instance_components(instance)
                evaluators = [
                    IntervalEvaluator(compile_connected_on_2wp(query, component.graph))
                    for component in components
                ]
                return ComponentPlan(
                    evaluators, always_combine=False,
                    component_edges=[c.graph.edges() for c in components],
                    method="connected-2wp",
                    proposition="Proposition 4.11 (+ Lemma 3.7)", **metadata,
                )
            if instance_union_dwt and is_one_way_path(query):
                labels = path_query_labels(query)
                components = self._instance_components(instance)
                evaluators = [
                    DWTPathEvaluator(compile_labeled_path_on_dwt(labels, component.graph))
                    for component in components
                ]
                return ComponentPlan(
                    evaluators, always_combine=False,
                    component_edges=[c.graph.edges() for c in components],
                    method="labeled-dwt",
                    proposition="Proposition 4.10 (+ Lemma 3.7)", **metadata,
                )

        if unlabeled and instance_union_dwt:
            mapping = cached_level_mapping(query)
            if mapping is None:
                return ConstantPlan(
                    False, method="graded-collapse",
                    proposition="Proposition 3.6", **metadata,
                )
            if mapping.difference == 0:
                return ConstantPlan(
                    True, method="graded-collapse",
                    proposition="Proposition 3.6", **metadata,
                )
            # Proposition 3.6 always combines over components (even when the
            # instance is connected), mirroring phom_unlabeled_on_union_dwt.
            components = instance.connected_components()
            evaluators = self._polytree_evaluators(
                mapping.difference, components, self._polytree_method()
            )
            return ComponentPlan(
                evaluators, always_combine=True,
                component_edges=[c.graph.edges() for c in components],
                method="graded-collapse", proposition="Proposition 3.6", **metadata,
            )

        if (
            unlabeled
            and instance_union_pt
            and graph_in_class(query, GraphClass.UNION_DOWNWARD_TREE)
        ):
            method = "automaton" if self.prefer in ("automaton", "lineage") else "dp"
            length = collapse_query_to_path_length(query)
            components = self._instance_components(instance)
            evaluators = self._polytree_evaluators(length, components, method)
            return ComponentPlan(
                evaluators, always_combine=False,
                component_edges=[c.graph.edges() for c in components],
                method="polytree-" + method,
                proposition="Propositions 5.4 / 5.5 (+ Lemma 3.7)", **metadata,
            )

        if not allow_fallback:
            raise ClassConstraintError(_HARD_CELL_MESSAGE)
        return FallbackPlan(
            allow_brute_force=self.allow_brute_force,
            method="brute-force-worlds", proposition=None,
            notes="#P-hard combination; exponential enumeration used", **metadata,
        )

    @staticmethod
    def _instance_components(instance: ProbabilisticGraph) -> List[ProbabilisticGraph]:
        """The Lemma 3.7 component split: the instance itself when connected."""
        if instance.graph.is_weakly_connected():
            return [instance]
        return instance.connected_components()

    @staticmethod
    def _polytree_evaluators(
        path_length: int, components: Sequence[ProbabilisticGraph], method: str
    ) -> List:
        if method == "automaton":
            return [
                CircuitComponentEvaluator(
                    compile_path_circuit_on_polytree(path_length, component)
                )
                for component in components
            ]
        return [
            PolytreeDPEvaluator(
                compile_path_dp_on_polytree(path_length, component.graph)
            )
            for component in components
        ]


def phom_probability(
    query: QueryLike,
    instance: ProbabilisticGraph,
    method: str = "auto",
    allow_brute_force: bool = True,
    prefer: str = "dp",
    precision: PrecisionLike = "exact",
    epsilon: float = 0.05,
    delta: float = 0.01,
    seed: Optional[int] = None,
    minimize_queries: bool = True,
) -> Number:
    """``Pr(query ⇝ instance)``: the one-call public API of the library.

    Parameters
    ----------
    query:
        The conjunctive query, as a directed edge-labeled graph or as a
        query-language string such as ``"R(x, y), S(y, z)"`` (see
        :mod:`repro.query`).
    instance:
        The tuple-independent probabilistic instance.
    method:
        ``"auto"`` (default) chooses the best applicable algorithm from the
        paper's classification; explicit method names are accepted as well
        (see :meth:`PHomSolver.available_methods`).
    allow_brute_force:
        Whether #P-hard combinations may be answered by exponential
        enumeration (with a warning) instead of raising.
    prefer:
        Evaluation flavour for tractable cases: ``"dp"`` (direct dynamic
        programs), ``"lineage"`` or ``"automaton"`` (the paper's
        constructions).
    precision:
        ``"exact"`` (default) for bit-exact :class:`~fractions.Fraction`
        results; ``"float"`` for the fast double-precision backend;
        ``"approx"`` to answer #P-hard combinations with the Karp–Luby
        ``(ε, δ)`` sampler instead of exponential brute force.
    epsilon / delta / seed:
        The sampling contract and RNG seed, consulted only when sampling
        runs (``precision="approx"`` or one of the explicit sampling
        methods ``"karp-luby"`` / ``"monte-carlo-worlds"``).
    minimize_queries:
        Whether the automatic dispatch minimizes the query to its
        homomorphic core before classification (default ``True``; see
        :class:`PHomSolver`).
    """
    solver = PHomSolver(
        allow_brute_force=allow_brute_force,
        prefer=prefer,
        precision=precision,
        epsilon=epsilon,
        delta=delta,
        seed=seed,
        minimize_queries=minimize_queries,
    )
    return solver.probability(query, instance, method=method)
