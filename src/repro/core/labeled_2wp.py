"""Proposition 4.11: connected (labeled) queries on two-way-path instances.

The instance ``H`` is a two-way path ``a_1 − a_2 − ... − a_{k+1}`` (each ``−``
being a forward or backward labeled edge).  Because the query is connected,
the image of any homomorphism lies inside a connected subpath of ``H``, and
there are only quadratically many of those.  The paper's three-step scheme:

1. enumerate the connected subpaths ``C_{i,j}`` (vertices ``a_i .. a_{j+1}``);
2. decide for each one whether ``G ⇝ C_{i,j}``; a subpath trivially has the
   X-property w.r.t. its left-to-right order, so Theorem 4.13 (arc
   consistency + minimum assignment, :mod:`repro.csp.xproperty`) decides this
   in polynomial time even though ``G`` is an arbitrary connected graph;
3. the resulting lineage (one clause per matching subpath) is β-acyclic —
   eliminate edge variables from the ends of the path inward — so its
   probability is polynomial-time computable (Theorem 4.9).

Besides the lineage route, :func:`phom_connected_on_2wp` offers a direct
dynamic program: since a superpath of a matching subpath also matches, it is
enough to know, for every right endpoint ``j``, the *shortest* matching
subpath ending at ``j``; a left-to-right scan over the edge positions whose
state is the current run length of consecutively present edges then computes
the probability that some matching subpath is fully present, in ``O(k²)``
arithmetic operations.

Tape-lowering contract: :mod:`repro.tape` compiles the interval dynamic
program to a flat tape by symbolically executing it with slot references in
place of numbers.  The DP must therefore branch only on structure (which
subpaths match — decided at compile time), never on probability values.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ClassConstraintError
from repro.csp.xproperty import x_property_has_homomorphism
from repro.graphs.classes import is_two_way_path, two_way_path_order
from repro.graphs.digraph import DiGraph, Edge, Vertex
from repro.lineage.dnf import PositiveDNF
from repro.numeric import EXACT, Number, NumericContext
from repro.probability.prob_graph import ProbabilisticGraph


def _path_edges_in_order(graph: DiGraph, order: Sequence[Vertex]) -> List[Edge]:
    """The edges of a 2WP listed along the path order (whatever their orientation)."""
    edges = []
    for left, right in zip(order, order[1:]):
        if graph.has_edge(left, right):
            edges.append(graph.get_edge(left, right))
        else:
            edges.append(graph.get_edge(right, left))
    return edges


def _interval_matches(
    query: DiGraph, graph: DiGraph, order: Sequence[Vertex], start: int, end: int
) -> bool:
    """Whether the connected query maps into the subpath with edge interval ``[start, end]``.

    The induced subpath graphs depend on the instance only, so they are
    memoised on the instance graph and shared by every query answered
    against it (the repeated-query hot path of :meth:`PHomSolver.solve_many`).
    """
    subpath_vertices = order[start - 1 : end + 1]
    subpath = graph.cached(
        ("2wp_subpath", start, end),
        lambda: graph.induced_component(subpath_vertices).freeze(),
    )
    return x_property_has_homomorphism(query, subpath, subpath_vertices)


def _shortest_match_lengths(
    query: DiGraph, graph: DiGraph, order: Sequence[Vertex]
) -> List[Optional[int]]:
    """For each edge position ``j`` (1-based), the length of the shortest matching subpath ending at ``j``.

    A subpath is identified by its edge interval ``[i, j]``; it matches when
    the connected query has a homomorphism to the subgraph induced by the
    vertices ``a_i .. a_{j+1}``.  Matching is monotone under extending the
    interval (a superpath contains every subpath), so the largest matching
    start position ``I(j)`` is non-decreasing in ``j``; a two-pointer sweep
    therefore finds every shortest matching interval with an amortised
    *linear* number of homomorphism tests instead of the naive quadratic
    scan.  Returns ``None`` at positions where no matching subpath ends.
    """
    k = len(order) - 1
    shortest: List[Optional[int]] = [None] * (k + 1)  # 1-based positions
    largest_start = 0  # 0 means "no matching interval found so far"
    for j in range(1, k + 1):
        if largest_start == 0:
            # The longest candidate ending at j is [1, j]; if even that does
            # not match, nothing ending at j does.
            if not _interval_matches(query, graph, order, 1, j):
                continue
            largest_start = 1
        # [largest_start, j] matches (it extends the previous matching
        # interval); shrink it from the left as far as possible.
        while largest_start < j and _interval_matches(query, graph, order, largest_start + 1, j):
            largest_start += 1
        shortest[j] = j - largest_start + 1
    return shortest


def two_way_path_lineage(query: DiGraph, instance: ProbabilisticGraph) -> PositiveDNF:
    """The β-acyclic lineage of a connected query on a 2WP instance.

    One clause per *shortest* matching subpath ending at each position
    (clauses for longer matching subpaths ending at the same position are
    supersets and therefore redundant for the union event).
    """
    graph = instance.graph
    if not is_two_way_path(graph):
        raise ClassConstraintError("two_way_path_lineage requires a two-way-path instance")
    if not query.is_weakly_connected():
        raise ClassConstraintError("Proposition 4.11 requires a connected query")
    lineage = PositiveDNF()
    if query.num_edges() == 0:
        lineage.add_clause([])
        return lineage
    order = two_way_path_order(graph)
    edges = _path_edges_in_order(graph, order)
    shortest = _shortest_match_lengths(query, graph, order)
    for j in range(1, len(order)):
        length = shortest[j]
        if length is not None:
            lineage.add_clause(edges[j - length : j])
    return lineage


def _interval_dp_probability(
    edges: Sequence[Edge],
    probabilities: Mapping[Edge, Fraction],
    shortest: Sequence[Optional[int]],
    context: NumericContext = EXACT,
) -> Number:
    """Probability that some matching edge interval is fully present.

    ``shortest[j]`` is the length of the shortest matching interval ending at
    position ``j`` (1-based), or ``None``.  The scan keeps the distribution
    of the current run length of present edges restricted to the event "no
    matching interval has been completed yet"; the answer is one minus the
    surviving mass.

    The run-length state is a flat list indexed by run length (the keys are
    dense integers starting at 0), which replaces the previous dict-of-ints
    state: no hashing, no ``dict.get`` on the inner loop, and the list never
    grows past the completion threshold at the current position.
    """
    zero = context.zero
    no_match: List[Number] = [context.one]  # index = current run length
    for position, edge in enumerate(edges, start=1):
        probability = probabilities[edge]
        threshold = shortest[position]
        size = len(no_match) + 1
        if threshold is not None and threshold < size:
            size = threshold
        updated: List[Number] = [zero] * max(size, 1)
        absent_mass = zero
        for run_length, mass in enumerate(no_match):
            absent_mass += (1 - probability) * mass
            extended = run_length + 1
            if threshold is not None and extended >= threshold:
                continue  # a matching interval completes: leave the "no match" event
            updated[extended] += probability * mass
        updated[0] += absent_mass
        no_match = updated
    return 1 - sum(no_match, zero)


# ----------------------------------------------------------------------
# compile/evaluate halves (the structural vs arithmetic split)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TwoWayPathSkeleton:
    """The probability-independent structure of Proposition 4.11's DP.

    ``edges`` lists the instance edges along the path order and ``shortest``
    holds, per 1-based edge position, the length of the shortest matching
    subpath ending there (or ``None``).  Everything expensive — the path
    order, the X-property homomorphism tests of the two-pointer sweep — is
    paid once at compile time; :func:`evaluate_two_way_path_skeleton` is pure
    arithmetic over the current edge probabilities.
    """

    edges: Tuple[Edge, ...]
    shortest: Tuple[Optional[int], ...]


def compile_connected_on_2wp(query: DiGraph, graph: DiGraph) -> TwoWayPathSkeleton:
    """Compile the structural half of ``Pr(query ⇝ 2WP instance)``.

    ``graph`` is the (connected, two-way-path) instance graph; probabilities
    play no role here.  Raises :class:`~repro.exceptions.ClassConstraintError`
    outside Proposition 4.11's classes, like the one-shot solver.
    """
    if not is_two_way_path(graph):
        raise ClassConstraintError("Proposition 4.11 requires a two-way-path instance")
    if not query.is_weakly_connected():
        raise ClassConstraintError("Proposition 4.11 requires a connected query")
    order = two_way_path_order(graph)
    edges = tuple(_path_edges_in_order(graph, order))
    shortest = tuple(_shortest_match_lengths(query, graph, order))
    return TwoWayPathSkeleton(edges=edges, shortest=shortest)


def evaluate_two_way_path_skeleton(
    skeleton: TwoWayPathSkeleton,
    probabilities: Mapping[Edge, Fraction],
    context: NumericContext = EXACT,
) -> Number:
    """The arithmetic half: run the run-length DP over current probabilities."""
    return _interval_dp_probability(skeleton.edges, probabilities, skeleton.shortest, context)


def phom_connected_on_2wp(
    query: DiGraph,
    instance: ProbabilisticGraph,
    method: str = "dp",
    context: NumericContext = EXACT,
) -> Number:
    """``Pr(query ⇝ instance)`` for a connected query on a 2WP instance.

    Parameters
    ----------
    query:
        Any connected query graph (labels, branching and two-wayness all
        allowed).
    instance:
        A probabilistic two-way-path instance.
    method:
        ``"dp"`` (default) for the run-length dynamic program, ``"lineage"``
        for the paper's β-acyclic lineage route.
    context:
        Numeric backend (exact :class:`~fractions.Fraction` by default).
    """
    graph = instance.graph
    if not is_two_way_path(graph):
        raise ClassConstraintError("Proposition 4.11 requires a two-way-path instance")
    if not query.is_weakly_connected():
        raise ClassConstraintError("Proposition 4.11 requires a connected query")
    if query.num_edges() == 0:
        return context.one
    if method == "lineage":
        lineage = two_way_path_lineage(query, instance)
        return lineage.probability(
            context.instance_probabilities(instance), context=context
        )
    if method == "dp":
        skeleton = compile_connected_on_2wp(query, graph)
        return evaluate_two_way_path_skeleton(
            skeleton, context.instance_probabilities(instance), context
        )
    raise ValueError(f"unknown method {method!r}; expected 'dp' or 'lineage'")
