"""Proposition 4.10: labeled one-way-path queries on downward-tree instances.

The paper's argument has three steps: (i) the candidate matches of a 1WP
query in a DWT instance are the downward paths with as many edges as the
query — there are linearly many of them because a downward path is determined
by its lowest vertex; (ii) keeping only the label-matching ones yields a
positive DNF lineage; (iii) that lineage is β-acyclic (eliminate variables
bottom-up along the tree), so its probability is computable in polynomial
time by Theorem 4.9.

This module implements that construction (:func:`dwt_path_lineage`) and, as
the certified-polynomial evaluation route, a direct dynamic program
(:func:`phom_labeled_path_on_dwt` with ``method="dp"``): a
Knuth–Morris–Pratt automaton over the query's label string is run down the
tree, and the failure probability is multiplied over independent subtrees.
The state space is ``O(|H| · |G|)`` pairs, each processed in constant time
per child edge, so the overall complexity is ``O(|H| · |G|)`` — the same
bound as the paper's.

Tape-lowering contract: :mod:`repro.tape` compiles the KMP-automaton dynamic
program to a flat tape by symbolically executing it with slot references in
place of numbers.  Automaton transitions depend only on labels (structure),
so the control flow is probability-independent — keep it that way when
modifying the DP, or compiled tapes would specialise to the probabilities
seen at compile time.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import ClassConstraintError
from repro.graphs.builders import path_query_labels
from repro.graphs.classes import downward_tree_root, is_downward_tree, is_one_way_path
from repro.graphs.digraph import DiGraph, Edge, Vertex
from repro.lineage.dnf import PositiveDNF
from repro.numeric import EXACT, Number, NumericContext
from repro.probability.prob_graph import ProbabilisticGraph


# ----------------------------------------------------------------------
# lineage construction (the paper's route)
# ----------------------------------------------------------------------
def dwt_path_lineage(query_labels: Sequence[str], instance: ProbabilisticGraph) -> PositiveDNF:
    """The β-acyclic lineage of the 1WP query ``R1 ... Rm`` on a DWT instance.

    One clause per downward path of ``m`` edges whose label string equals the
    query's; the clause contains exactly the edges of that path.  A query of
    length zero yields the constant-true lineage (the single-vertex query
    always holds).
    """
    graph = instance.graph
    if not is_downward_tree(graph):
        raise ClassConstraintError("dwt_path_lineage requires a downward-tree instance")
    labels = list(query_labels)
    m = len(labels)
    lineage = PositiveDNF()
    if m == 0:
        lineage.add_clause([])
        return lineage
    parent_edge: Dict[Vertex, Optional[Edge]] = {v: None for v in graph.vertices}
    for edge in graph.edges():
        parent_edge[edge.target] = edge
    for bottom in graph.vertices:
        # Walk up m edges from ``bottom``; the walk is unique in a DWT.
        edges_bottom_up: List[Edge] = []
        current = bottom
        while len(edges_bottom_up) < m:
            edge = parent_edge[current]
            if edge is None:
                break
            edges_bottom_up.append(edge)
            current = edge.source
        if len(edges_bottom_up) < m:
            continue
        top_down = list(reversed(edges_bottom_up))
        if all(edge.label == label for edge, label in zip(top_down, labels)):
            lineage.add_clause(top_down)
    return lineage


# ----------------------------------------------------------------------
# KMP machinery for the direct dynamic program
# ----------------------------------------------------------------------
def _prefix_function(pattern: Sequence[str]) -> List[int]:
    """The classic KMP prefix (failure) function of the label pattern."""
    m = len(pattern)
    failure = [0] * (m + 1)
    k = 0
    for i in range(1, m):
        while k > 0 and pattern[i] != pattern[k]:
            k = failure[k]
        if pattern[i] == pattern[k]:
            k += 1
        failure[i + 1] = k
    return failure


def kmp_transition_table(
    pattern: Sequence[str], alphabet: Sequence[str]
) -> Dict[Tuple[int, str], int]:
    """The KMP automaton ``δ(state, letter)`` for the label pattern.

    State ``q`` means "the last ``q`` consecutive present edges spell the
    first ``q`` labels of the pattern"; reaching state ``m`` means a full
    occurrence of the pattern ends at the current edge.
    """
    m = len(pattern)
    failure = _prefix_function(pattern)
    table: Dict[Tuple[int, str], int] = {}
    letters = sorted(set(alphabet) | set(pattern))
    for state in range(m + 1):
        for letter in letters:
            if state < m and letter == pattern[state]:
                table[(state, letter)] = state + 1
                continue
            if state == 0:
                table[(state, letter)] = 0
                continue
            # Follow failure links until a match or state 0.
            fallback = failure[state] if state < m else failure[m]
            table[(state, letter)] = table[(fallback, letter)]
    return table


# ----------------------------------------------------------------------
# compile/evaluate halves (the structural vs arithmetic split)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class DWTPathSkeleton:
    """The probability-independent structure of Proposition 4.10's KMP DP.

    Every reachable ``(vertex, KMP state)`` pair of the recursion is
    flattened into one node, listed children-before-parents, and each node
    carries its *ops*: one ``(edge_index, absent_node, present_node)``
    triple per child edge, where ``edge_index`` points into ``edges``,
    ``absent_node`` is the index of ``(child, 0)`` and ``present_node`` the
    index of ``(child, δ(state, label))`` — or ``None`` when the transition
    completes the pattern.  Ops reference edges by dense index so the
    arithmetic pass hashes each edge once (to look its probability up)
    instead of once per ``(vertex, state)`` pair using it.  Compiling pays
    for the KMP table and the reachability walk once; evaluation is a single
    linear pass of products and sums over the current probabilities.
    """

    edges: Tuple[Edge, ...]
    nodes: Tuple[Tuple[Tuple[int, int, Optional[int]], ...], ...]
    root_index: int


def compile_labeled_path_on_dwt(
    query_labels: Sequence[str], graph: DiGraph
) -> DWTPathSkeleton:
    """Compile the structural half of the KMP dynamic program on a DWT."""
    if not is_downward_tree(graph):
        raise ClassConstraintError("Proposition 4.10 requires a downward-tree instance")
    pattern = list(query_labels)
    m = len(pattern)
    table = kmp_transition_table(pattern, sorted(graph.labels()))
    root = downward_tree_root(graph)
    edges: List[Edge] = []
    edge_index: Dict[Edge, int] = {}
    index: Dict[Tuple[Vertex, int], int] = {}
    nodes: List[Tuple[Tuple[int, int, Optional[int]], ...]] = []

    def intern_edge(edge: Edge) -> int:
        existing = edge_index.get(edge)
        if existing is not None:
            return existing
        edge_index[edge] = len(edges)
        edges.append(edge)
        return edge_index[edge]

    def build(vertex: Vertex, state: int) -> int:
        key = (vertex, state)
        existing = index.get(key)
        if existing is not None:
            return existing
        ops: List[Tuple[int, int, Optional[int]]] = []
        for edge in graph.out_edges(vertex):
            child = edge.target
            absent_node = build(child, 0)
            next_state = table[(state, edge.label)]
            present_node = build(child, next_state) if next_state < m else None
            ops.append((intern_edge(edge), absent_node, present_node))
        node_index = len(nodes)
        index[key] = node_index
        nodes.append(tuple(ops))
        return node_index

    root_index = build(root, 0)
    return DWTPathSkeleton(edges=tuple(edges), nodes=tuple(nodes), root_index=root_index)


def evaluate_dwt_path_skeleton(
    skeleton: DWTPathSkeleton,
    probabilities: Mapping[Edge, Fraction],
    context: NumericContext = EXACT,
) -> Number:
    """The arithmetic half: ``Pr(some matching path present)`` over the skeleton.

    Performs exactly the products and sums of the recursive DP, in the same
    order, so exact-mode results are bit-identical to the one-shot route.
    """
    one = context.one
    dense = [probabilities[edge] for edge in skeleton.edges]
    complements = [1 - probability for probability in dense]
    values: List[Number] = []
    append = values.append
    for ops in skeleton.nodes:
        result = one
        for edge_position, absent_node, present_node in ops:
            absent = complements[edge_position] * values[absent_node]
            if present_node is None:
                result *= absent  # the 'present' branch completes the pattern: mass 0
            else:
                result *= absent + dense[edge_position] * values[present_node]
        append(result)
    return 1 - values[skeleton.root_index]


# ----------------------------------------------------------------------
# public solver
# ----------------------------------------------------------------------
def phom_labeled_path_on_dwt(
    query: DiGraph,
    instance: ProbabilisticGraph,
    method: str = "dp",
    context: NumericContext = EXACT,
) -> Number:
    """``Pr(query ⇝ instance)`` for a (labeled) 1WP query on a DWT instance.

    Parameters
    ----------
    query:
        A one-way path query (labels allowed).
    instance:
        A probabilistic downward-tree instance.
    method:
        ``"dp"`` (default) for the KMP dynamic program, ``"lineage"`` for the
        paper's β-acyclic lineage route evaluated by memoised Shannon
        expansion along the reverse β-elimination order.
    context:
        Numeric backend (exact :class:`~fractions.Fraction` by default).
    """
    if not is_one_way_path(query):
        raise ClassConstraintError("Proposition 4.10 requires a one-way path query")
    graph = instance.graph
    if not is_downward_tree(graph):
        raise ClassConstraintError("Proposition 4.10 requires a downward-tree instance")
    labels = path_query_labels(query)
    if not labels:
        return context.one
    if method == "dp":
        skeleton = compile_labeled_path_on_dwt(labels, graph)
        return evaluate_dwt_path_skeleton(
            skeleton, context.instance_probabilities(instance), context
        )
    if method == "lineage":
        lineage = dwt_path_lineage(labels, instance)
        return lineage.probability(
            context.instance_probabilities(instance), context=context
        )
    raise ValueError(f"unknown method {method!r}; expected 'dp' or 'lineage'")
