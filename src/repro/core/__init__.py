"""The paper's tractable PHom algorithms and the dispatching solver.

Each module implements one tractability result of the paper, in two flavours
whenever that is natural: the paper's lineage/automaton-based construction
and a direct dynamic program with the same polynomial guarantees (the two
are cross-checked against each other and against the brute-force oracle in
the test suite).

* :mod:`repro.core.disconnected` — Lemma 3.7 (disconnected instances) and
  Proposition 3.6 (arbitrary unlabeled queries on ⊔DWT instances via graded
  DAGs);
* :mod:`repro.core.labeled_dwt` — Proposition 4.10 (labeled 1WP queries on
  DWT instances via β-acyclic lineages);
* :mod:`repro.core.labeled_2wp` — Proposition 4.11 (connected queries on
  2WP instances via the X-property and β-acyclic lineages);
* :mod:`repro.core.unlabeled_pt` — Propositions 5.4 and 5.5 (unlabeled
  path/tree queries on polytree instances via tree automata compiled to
  d-DNNF circuits);
* :mod:`repro.core.solver` — the :class:`~repro.core.solver.PHomSolver`
  dispatcher implementing the full classification of Tables 1–3.
"""

from repro.core.solver import PHomSolver, PHomResult, phom_probability
from repro.core.disconnected import (
    phom_on_disconnected_instance,
    phom_unlabeled_on_union_dwt,
)
from repro.core.labeled_dwt import phom_labeled_path_on_dwt, dwt_path_lineage
from repro.core.labeled_2wp import phom_connected_on_2wp, two_way_path_lineage
from repro.core.unlabeled_pt import (
    phom_unlabeled_path_on_polytree,
    phom_unlabeled_tree_query_on_polytree,
)

__all__ = [
    "PHomSolver",
    "PHomResult",
    "phom_probability",
    "phom_on_disconnected_instance",
    "phom_unlabeled_on_union_dwt",
    "phom_labeled_path_on_dwt",
    "dwt_path_lineage",
    "phom_connected_on_2wp",
    "two_way_path_lineage",
    "phom_unlabeled_path_on_polytree",
    "phom_unlabeled_tree_query_on_polytree",
]
