"""Lemma 3.7 (disconnected instances) and Proposition 3.6 (queries on ⊔DWT).

*Lemma 3.7.*  When the query is connected, the image of any homomorphism lies
inside a single connected component of the instance, and the components'
edges are independent.  Hence

``Pr(G ⇝ H) = 1 − Π_i (1 − Pr(G ⇝ H_i))``

over the connected components ``H_i``; evaluating PHom on a disconnected
instance reduces to evaluating it on the components.

*Proposition 3.6.*  In the unlabeled setting, an arbitrary query graph ``G``
on a ⊔DWT instance either has probability zero (when ``G`` has a directed
cycle or two directed paths of different lengths between the same pair of
vertices — i.e. when ``G`` is not a graded DAG) or is equivalent, on every
possible world, to the one-way path whose length is the *difference of
levels* of ``G`` (Definition 3.5).  The probability then follows from
Proposition 5.5 applied per component.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, List

from repro.exceptions import ClassConstraintError
from repro.graphs.classes import GraphClass, graph_in_class
from repro.graphs.digraph import DiGraph
from repro.graphs.grading import level_mapping
from repro.numeric import EXACT, Number, NumericContext
from repro.probability.prob_graph import ProbabilisticGraph
from repro.core.unlabeled_pt import phom_unlabeled_path_on_polytree

ComponentSolver = Callable[[DiGraph, ProbabilisticGraph], Number]


def phom_on_disconnected_instance(
    query: DiGraph,
    instance: ProbabilisticGraph,
    component_solver: ComponentSolver,
    context: NumericContext = EXACT,
) -> Number:
    """``Pr(query ⇝ instance)`` for a *connected* query via Lemma 3.7.

    Parameters
    ----------
    query:
        A connected query graph.
    instance:
        Any probabilistic instance; its connected components are solved
        independently with ``component_solver`` and combined with the
        complement-product formula.
    component_solver:
        Callable computing ``Pr(query ⇝ component)`` for a connected
        component of the instance.
    context:
        Numeric backend combining the per-component answers.
    """
    if not query.is_weakly_connected():
        raise ClassConstraintError("Lemma 3.7 requires a connected query")
    survival = context.one
    for component in instance.connected_components():
        survival *= 1 - component_solver(query, component)
    return 1 - survival


def phom_unlabeled_on_union_dwt(
    query: DiGraph,
    instance: ProbabilisticGraph,
    method: str = "automaton",
    context: NumericContext = EXACT,
) -> Number:
    """``Pr(query ⇝ instance)`` for an arbitrary unlabeled query on a ⊔DWT instance.

    Implements Proposition 3.6:

    1. if the query is not a graded DAG, return 0 (no possible world of a
       downward forest can satisfy it);
    2. otherwise compute its difference of levels ``m`` and evaluate the
       equivalent path query ``→^m`` on each instance component
       (Proposition 5.5 / 5.4), combining components with Lemma 3.7.

    Parameters
    ----------
    query:
        Any (possibly disconnected, possibly cyclic) unlabeled query graph.
    instance:
        A probabilistic instance whose components are downward trees.
    method:
        Evaluation method for the per-component path probability
        (``"automaton"`` or ``"dp"``; see
        :func:`repro.core.unlabeled_pt.phom_unlabeled_path_on_polytree`).
    """
    if not graph_in_class(instance.graph, GraphClass.UNION_DOWNWARD_TREE):
        raise ClassConstraintError(
            "Proposition 3.6 requires an instance whose components are downward trees"
        )
    mapping = cached_level_mapping(query)
    if mapping is None:
        return context.zero
    length = mapping.difference
    if length == 0:
        return context.one
    survival = context.one
    for component in instance.connected_components():
        survival *= 1 - phom_unlabeled_path_on_polytree(
            length, component, method=method, context=context
        )
    return 1 - survival


def cached_level_mapping(query: DiGraph):
    """The query's level mapping (Definition 3.5), memoised on the query graph.

    Shared between the one-shot Proposition 3.6 route and the plan compiler
    (:mod:`repro.plan`), both of which need the graded-DAG verdict and the
    difference of levels.
    """
    return query.cached("level_mapping", lambda: level_mapping(query))


def components_of_query(query: DiGraph) -> List[DiGraph]:
    """The connected components of a query graph (helper for disconnected queries)."""
    return query.connected_component_graphs()
