"""Propositions 5.4 and 5.5: unlabeled path/tree queries on polytree instances.

``PHom(1WP, PT)`` in the unlabeled setting asks for the probability that a
possible world of a polytree contains a directed path of at least ``m``
edges.  Proposition 5.4 solves it by compiling a deterministic bottom-up tree
automaton (:mod:`repro.automata.path_automaton`) over the binary encoding of
the instance into a d-DNNF lineage circuit and evaluating its probability —
everything polynomial in ``|G| · |H|``.

Proposition 5.5 extends the result to downward-tree queries and disjoint
unions thereof: in the unlabeled setting such a query is equivalent to the
one-way path whose length is the query's longest directed path (its height),
so it suffices to collapse the query and reuse Proposition 5.4.

Both an automaton route and a direct message-passing dynamic program over the
original polytree are provided; they implement the same state space
(⟨up, down, best⟩ capped at ``m``) and are cross-checked in the tests.

Tape-lowering contract: :mod:`repro.tape` compiles both routes (the d-DNNF
evaluation and the message-passing DP) to flat tapes by symbolically
executing them with slot references in place of numbers.  Their control flow
— automaton transitions, state-vector indexing, message schedules — depends
only on graph structure, never on probability values; preserve that
invariant when modifying either route.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple

from repro.exceptions import ClassConstraintError
from repro.automata.binary_tree import LABEL_UP, _rooted_children, encode_polytree
from repro.automata.path_automaton import build_longest_path_automaton
from repro.automata.provenance import provenance_circuit
from repro.graphs.classes import (
    GraphClass,
    graph_in_class,
    is_one_way_path,
    is_polytree,
)
from repro.graphs.digraph import DiGraph, Edge, Vertex
from repro.lineage.ddnnf import DDNNF
from repro.numeric import EXACT, Number, NumericContext
from repro.probability.prob_graph import ProbabilisticGraph


# ----------------------------------------------------------------------
# Proposition 5.4: compile/evaluate halves of both routes
# ----------------------------------------------------------------------
def compile_path_circuit_on_polytree(
    path_length: int, instance: ProbabilisticGraph
) -> DDNNF:
    """Compile the d-DNNF lineage of ``→^m ⇝ instance`` (structural half).

    The circuit's shape depends only on the instance *graph* and the path
    length — the tree encoding, the automaton and the provenance
    construction never look at the edge probabilities — so one compiled
    circuit serves every probability assignment of the same instance.
    """
    tree = encode_polytree(instance)
    automaton = build_longest_path_automaton(path_length)
    return provenance_circuit(automaton, tree)


def _automaton_probability(
    path_length: int, instance: ProbabilisticGraph, context: NumericContext = EXACT
) -> Number:
    """Probability of a directed path of ``path_length`` edges, via d-DNNF compilation."""
    circuit = compile_path_circuit_on_polytree(path_length, instance)
    return circuit.probability(context.instance_probabilities(instance), context=context)


@dataclass(frozen=True)
class PolytreeDPSkeleton:
    """The probability-independent structure of Proposition 5.4's direct DP.

    ``order`` lists the vertices of the (arbitrarily rooted) underlying tree
    children-before-parents; ``children`` gives each vertex's fold sequence
    ``(child, direction, edge)`` exactly as the recursive DP visits it.  The
    rooting BFS is paid at compile time; evaluation folds distributions in
    the same order as the one-shot route, so exact results are bit-identical.
    """

    path_length: int
    order: Tuple[Vertex, ...]
    children: Mapping[Vertex, Tuple[Tuple[Vertex, str, Edge], ...]]


def compile_path_dp_on_polytree(path_length: int, graph: DiGraph) -> PolytreeDPSkeleton:
    """Compile the structural half of the message-passing DP on a polytree."""
    if not is_polytree(graph):
        raise ClassConstraintError("Proposition 5.4 requires a polytree instance")
    root = min(graph.vertices, key=repr)
    children = _rooted_children(graph, root)
    order: List[Vertex] = []
    stack: List[Tuple[Vertex, bool]] = [(root, False)]
    while stack:
        vertex, expanded = stack.pop()
        if expanded:
            order.append(vertex)
            continue
        stack.append((vertex, True))
        for child, _direction, _edge in reversed(children[vertex]):
            stack.append((child, False))
    return PolytreeDPSkeleton(
        path_length=path_length,
        order=tuple(order),
        children={vertex: tuple(folds) for vertex, folds in children.items()},
    )


def evaluate_polytree_dp_skeleton(
    skeleton: PolytreeDPSkeleton,
    probabilities: Mapping[Edge, Fraction],
    context: NumericContext = EXACT,
) -> Number:
    """The arithmetic half: fold ⟨up, down, best⟩ distributions bottom-up."""
    m = skeleton.path_length
    zero = context.zero

    def cap(value: int) -> int:
        return min(m, value)

    distributions: Dict[Vertex, Dict[Tuple[int, int, int], Number]] = {}
    for vertex in skeleton.order:
        dist: Dict[Tuple[int, int, int], Number] = {(0, 0, 0): context.one}
        for child, direction, edge in skeleton.children[vertex]:
            child_dist = distributions.pop(child)
            probability = probabilities[edge]
            updated: Dict[Tuple[int, int, int], Number] = {}
            for (up, down, best), mass in dist.items():
                for (c_up, c_down, c_best), c_mass in child_dist.items():
                    weight = mass * c_mass
                    # Edge absent: only the child's internal best survives.
                    absent_state = (up, down, cap(max(best, c_best)))
                    updated[absent_state] = (
                        updated.get(absent_state, zero) + weight * (1 - probability)
                    )
                    # Edge present: extend paths through the current vertex.
                    if direction == LABEL_UP:
                        new_up = cap(max(up, c_up + 1))
                        new_down = down
                        new_best = cap(max(best, c_best, new_up, c_up + 1 + down))
                    else:
                        new_down = cap(max(down, c_down + 1))
                        new_up = up
                        new_best = cap(max(best, c_best, new_down, up + 1 + c_down))
                    present_state = (new_up, new_down, new_best)
                    updated[present_state] = (
                        updated.get(present_state, zero) + weight * probability
                    )
            dist = updated
        distributions[vertex] = dist

    final = distributions[skeleton.order[-1]]
    return sum(
        (mass for (_up, _down, best), mass in final.items() if best >= m), zero
    )


def _direct_dp_probability(
    path_length: int, instance: ProbabilisticGraph, context: NumericContext = EXACT
) -> Number:
    """Probability of a directed path of ``path_length`` edges, via message passing.

    The state distribution at a vertex ``v`` ranges over triples
    ``(up, down, best)`` capped at ``m`` describing the part of the world
    inside the subtree of ``v`` (w.r.t. an arbitrary rooting of the underlying
    undirected tree).  Children are folded in one at a time; the fold is
    exactly the automaton transition of Proposition 5.4, applied to
    distributions instead of single states.  Implemented as compile +
    evaluate over the rooted skeleton.
    """
    skeleton = compile_path_dp_on_polytree(path_length, instance.graph)
    return evaluate_polytree_dp_skeleton(
        skeleton, context.instance_probabilities(instance), context
    )


def phom_unlabeled_path_on_polytree(
    path_length: int,
    instance: ProbabilisticGraph,
    method: str = "automaton",
    context: NumericContext = EXACT,
) -> Number:
    """``Pr(→^m ⇝ instance)`` for an unlabeled path query of ``path_length`` edges on a polytree.

    Parameters
    ----------
    path_length:
        The number of edges ``m`` of the one-way path query.
    instance:
        A probabilistic polytree instance (labels are ignored: the query is
        unlabeled, so Proposition 5.4 applies to the unlabeled setting only —
        the dispatcher checks that before routing here).
    method:
        ``"automaton"`` (default) for the tree-automaton + d-DNNF route of
        the paper, ``"dp"`` for the direct message-passing dynamic program.
    """
    if not is_polytree(instance.graph):
        raise ClassConstraintError("Proposition 5.4 requires a polytree instance")
    if path_length < 0:
        raise ValueError("the path length must be non-negative")
    if path_length == 0:
        return context.one
    if method == "automaton":
        return _automaton_probability(path_length, instance, context)
    if method == "dp":
        return _direct_dp_probability(path_length, instance, context)
    raise ValueError(f"unknown method {method!r}; expected 'automaton' or 'dp'")


# ----------------------------------------------------------------------
# Proposition 5.5: collapsing DWT / ⊔DWT queries to their height
# ----------------------------------------------------------------------
def collapse_query_to_path_length(query: DiGraph) -> int:
    """The length of the 1WP query equivalent to an unlabeled ⊔DWT query.

    For a downward tree this is its height (longest directed root-to-leaf
    path); for a disjoint union of downward trees, the greatest height of a
    component (Proposition 5.5).  One-way-path queries are downward trees,
    so they are covered as well.
    """
    if not graph_in_class(query, GraphClass.UNION_DOWNWARD_TREE):
        raise ClassConstraintError(
            "query collapse requires a downward-tree query or a disjoint union of downward trees"
        )
    return query.longest_directed_path_length()


def phom_unlabeled_tree_query_on_polytree(
    query: DiGraph,
    instance: ProbabilisticGraph,
    method: str = "automaton",
    context: NumericContext = EXACT,
) -> Number:
    """``Pr(query ⇝ instance)`` for an unlabeled ⊔DWT query on a polytree instance.

    Implements Proposition 5.5 by collapsing the query to the equivalent
    one-way path and delegating to Proposition 5.4.
    """
    length = collapse_query_to_path_length(query)
    return phom_unlabeled_path_on_polytree(length, instance, method=method, context=context)
