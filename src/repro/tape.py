"""Flat postfix tapes: compiled plans lowered to array programs.

A :class:`~repro.plan.CompiledPlan` already separates the structural phase
from the arithmetic, but its arithmetic half still *interprets* Python
object graphs per evaluation — circuit arenas, skeleton tuples, dict-keyed
distributions — and the serving layer's dominant access pattern (one plan,
many drifted probability tables) pays that interpretation per valuation.
This module lowers a plan one level further, to a :class:`PlanTape`: a flat
register program over parallel arrays

* ``opcodes`` / ``dsts`` / ``lhs`` / ``rhs`` — one entry per operation, in
  dependency (topological) order, over a semiring-with-complement opcode set
  (:data:`OP_COMPL`, :data:`OP_ADD`, :data:`OP_MUL`, :data:`OP_SUB`);
* a *constant pool* mapping register slots to exact
  :class:`~fractions.Fraction` constants;
* an *edge-slot indirection*: which input register each instance edge's
  probability is loaded into.

Evaluation is a single non-recursive loop — no gate dispatch, no dict
hashing, no recursion — and :meth:`PlanTape.evaluate_many` answers a whole
batch of probability valuations in one structural pass, vectorizing each
operation across the batch (with numpy when available on the float backend,
behind the :func:`repro.numeric.numpy_module` seam; a dependency-free
stdlib-list path otherwise and always in exact mode).

How tapes are compiled
----------------------

The compiler performs *symbolic execution* of the plan's own arithmetic
half: it calls ``plan._evaluate_with`` with a :class:`NumericContext` whose
numbers are :class:`SlotRef` handles that record every ``*``, ``+`` and
``1 - x`` into a tape builder, and with a lazy probability table that
allocates an input register the first time an edge's probability is read.
Every arithmetic route — the interval DP of Proposition 4.11, the KMP DP of
Proposition 4.10, the polytree distribution fold and the d-DNNF circuit of
Proposition 5.4, and the Lemma 3.7 survival product over components — is
thereby lowered *by running it*, with zero duplicated logic: the tape
performs the same operations in the same order as the object-graph
evaluator, so exact-mode results are bit-identical by construction.  (The
DP evaluators branch only on *structural* data — interval thresholds, KMP
states, distribution keys — never on probability values, which is what
makes symbolic execution sound.)

The only rewrites applied are identity peepholes (``0 + x → x``,
``1 * x → x``, ``0 * x → 0``, ``1 - x`` folded to one complement op, and
complement sharing), all of which are bitwise-exact on both backends for
the non-negative finite values probabilities produce.

Brute-force :class:`~repro.plan.FallbackPlan` objects have no arithmetic
half, so they cannot be lowered: :func:`compile_plan_tape` raises
:class:`~repro.exceptions.PlanError` for them.

>>> from repro import DiGraph, ProbabilisticGraph, one_way_path, PHomSolver
>>> H = DiGraph()
>>> _ = H.add_edge("a", "b", "R"); _ = H.add_edge("b", "c", "S")
>>> instance = ProbabilisticGraph(H, {("a", "b"): "1/2", ("b", "c"): "1/3"})
>>> plan = PHomSolver().compile(one_way_path(["R", "S"]), instance)
>>> tape = plan.tape()
>>> tape.evaluate(dict(instance.probabilities_view())) == plan.evaluate()
True
"""

from __future__ import annotations

from fractions import Fraction
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.exceptions import PlanError
from repro.graphs.digraph import Edge
from repro.numeric import (
    EXACT,
    Number,
    NumericContext,
    numpy_module,
    resolve_context,
)
from repro.obs.trace import current_tracer

#: Opcodes of the tape instruction set.  ``COMPL`` is the semiring
#: complement ``dst = 1 - lhs`` (``rhs`` unused); the rest are binary.
OP_COMPL = 0
OP_ADD = 1
OP_MUL = 2
OP_SUB = 3

#: Human-readable opcode names (docs, ``describe()``, error messages).
OPCODE_NAMES = {OP_COMPL: "compl", OP_ADD: "add", OP_MUL: "mul", OP_SUB: "sub"}

#: Accepted values of the ``backend=`` keyword on the batched entry points.
TAPE_BACKENDS = ("auto", "stdlib", "numpy")


class _TapeBuilder:
    """Accumulates slots, constants, inputs and operations during lowering."""

    def __init__(self) -> None:
        self.num_slots = 0
        self._const_slots: Dict[Fraction, int] = {}
        self.consts: List[Tuple[int, Fraction]] = []
        self.edge_slots: Dict[Edge, int] = {}
        self.opcodes: List[int] = []
        self.dsts: List[int] = []
        self.lhs: List[int] = []
        self.rhs: List[int] = []
        #: Complement sharing: operand slot -> slot holding ``1 - operand``.
        self._compl_cache: Dict[int, int] = {}
        self.zero_slot = self.const_slot(Fraction(0))
        self.one_slot = self.const_slot(Fraction(1))

    # -- slot allocation ----------------------------------------------
    def _new_slot(self) -> int:
        slot = self.num_slots
        self.num_slots += 1
        return slot

    def const_slot(self, value: Fraction) -> int:
        """The (deduplicated) constant-pool slot holding ``value``."""
        value = Fraction(value)
        slot = self._const_slots.get(value)
        if slot is None:
            slot = self._new_slot()
            self._const_slots[value] = slot
            self.consts.append((slot, value))
        return slot

    def input_slot(self, edge: Edge) -> int:
        """The input slot an edge's probability is loaded into (one per edge)."""
        slot = self.edge_slots.get(edge)
        if slot is None:
            slot = self._new_slot()
            self.edge_slots[edge] = slot
        return slot

    # -- op emission (with identity peepholes) ------------------------
    def _emit(self, opcode: int, a: int, b: int) -> int:
        dst = self._new_slot()
        self.opcodes.append(opcode)
        self.dsts.append(dst)
        self.lhs.append(a)
        self.rhs.append(b)
        return dst

    def add(self, a: int, b: int) -> int:
        if a == self.zero_slot:
            return b
        if b == self.zero_slot:
            return a
        return self._emit(OP_ADD, a, b)

    def mul(self, a: int, b: int) -> int:
        if a == self.one_slot:
            return b
        if b == self.one_slot:
            return a
        if a == self.zero_slot or b == self.zero_slot:
            return self.zero_slot
        return self._emit(OP_MUL, a, b)

    def compl(self, a: int) -> int:
        if a == self.zero_slot:
            return self.one_slot
        if a == self.one_slot:
            return self.zero_slot
        cached = self._compl_cache.get(a)
        if cached is None:
            cached = self._emit(OP_COMPL, a, a)
            self._compl_cache[a] = cached
        return cached

    def sub(self, a: int, b: int) -> int:
        if a == self.one_slot:
            return self.compl(b)
        if b == self.zero_slot:
            return a
        return self._emit(OP_SUB, a, b)

    # -- SlotRef plumbing ---------------------------------------------
    def ref(self, slot: int) -> "SlotRef":
        return SlotRef(self, slot)

    def as_ref(self, value: Any) -> Optional["SlotRef"]:
        """Coerce a symbolic or literal operand to a :class:`SlotRef`."""
        if isinstance(value, SlotRef):
            return value
        if isinstance(value, (int, Fraction)):
            return self.ref(self.const_slot(Fraction(value)))
        return None


class SlotRef:
    """A symbolic number: arithmetic on it records tape operations.

    Instances stand in for probabilities during lowering; ``*``, ``+``,
    ``-`` and the ``1 - x`` complement emit ops into the owning
    :class:`_TapeBuilder` and return new references.  Plain ``int`` /
    :class:`~fractions.Fraction` operands are interned into the constant
    pool, so mixed expressions like ``1 - p`` lower transparently.
    """

    __slots__ = ("builder", "slot")

    def __init__(self, builder: _TapeBuilder, slot: int) -> None:
        self.builder = builder
        self.slot = slot

    def _binary(self, other: Any, emit) -> "SlotRef":
        coerced = self.builder.as_ref(other)
        if coerced is None:
            return NotImplemented
        return self.builder.ref(emit(self.slot, coerced.slot))

    def __mul__(self, other: Any) -> "SlotRef":
        return self._binary(other, self.builder.mul)

    __rmul__ = __mul__

    def __add__(self, other: Any) -> "SlotRef":
        return self._binary(other, self.builder.add)

    __radd__ = __add__

    def __sub__(self, other: Any) -> "SlotRef":
        return self._binary(other, self.builder.sub)

    def __rsub__(self, other: Any) -> "SlotRef":
        coerced = self.builder.as_ref(other)
        if coerced is None:
            return NotImplemented
        return self.builder.ref(self.builder.sub(coerced.slot, self.slot))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SlotRef({self.slot})"


class _SymbolicTable(dict):
    """A lazy probability table: reading an edge allocates its input slot."""

    def __init__(self, builder: _TapeBuilder) -> None:
        super().__init__()
        self.builder = builder

    def __missing__(self, edge: Edge) -> SlotRef:
        ref = self.builder.ref(self.builder.input_slot(edge))
        self[edge] = ref
        return ref


def _symbolic_context(builder: _TapeBuilder) -> NumericContext:
    """A :class:`NumericContext` whose numbers are tape slot references."""

    def convert(value: Any) -> SlotRef:
        ref = builder.as_ref(value)
        if ref is None:
            raise PlanError(
                f"cannot lower value {value!r} of type {type(value).__name__} "
                "to a tape slot"
            )
        return ref

    return NumericContext(
        name="symbolic",
        zero=builder.ref(builder.zero_slot),
        one=builder.ref(builder.one_slot),
        convert=convert,
    )


def compile_plan_tape(plan) -> "PlanTape":
    """Lower a compiled plan's arithmetic half to a :class:`PlanTape`.

    Works on every tractable plan kind (:class:`~repro.plan.ConstantPlan`,
    :class:`~repro.plan.ComponentPlan` on all five dispatch routes); raises
    :class:`~repro.exceptions.PlanError` for brute-force
    :class:`~repro.plan.FallbackPlan` objects, which have no arithmetic
    half to lower.  Prefer :meth:`repro.plan.CompiledPlan.tape`, which
    memoises the result on the plan.
    """
    from repro.plan import FallbackPlan

    if isinstance(plan, FallbackPlan):
        raise PlanError(
            "brute-force fallback plans have no arithmetic half to lower to "
            "a tape; use plan.estimate(...) to sample them instead"
        )
    builder = _TapeBuilder()
    context = _symbolic_context(builder)
    table = _SymbolicTable(builder)
    result = plan._evaluate_with(table, context)
    root = builder.as_ref(result)
    if root is None:  # pragma: no cover - every evaluator returns numbers
        raise PlanError(f"plan evaluation produced a non-numeric {result!r}")
    return PlanTape(
        num_slots=builder.num_slots,
        consts=tuple(builder.consts),
        inputs=tuple(sorted(builder.edge_slots.items(), key=lambda item: item[1])),
        opcodes=tuple(builder.opcodes),
        dsts=tuple(builder.dsts),
        lhs=tuple(builder.lhs),
        rhs=tuple(builder.rhs),
        root=root.slot,
    )


def _resolve_backend(backend: str, context: NumericContext):
    """The (numpy-or-None, name) pair actually used for a batched pass."""
    if backend not in TAPE_BACKENDS:
        raise PlanError(
            f"unknown tape backend {backend!r}; expected one of {TAPE_BACKENDS}"
        )
    if backend == "stdlib":
        return None, "stdlib"
    if context.name != "float":
        if backend == "numpy":
            raise PlanError(
                "the numpy tape backend is float-only; exact mode always "
                "evaluates with stdlib Fractions (the bit-identity contract)"
            )
        return None, "stdlib"
    np = numpy_module()
    if np is None:
        if backend == "numpy":
            raise PlanError("backend='numpy' requested but numpy is not importable")
        return None, "stdlib"
    return np, "numpy"


class PlanTape:
    """A compiled plan's arithmetic, flattened to a register program.

    The tape is pure structure — picklable, instance-independent up to the
    edge identities in :attr:`inputs` — and therefore travels with its plan
    through the plan cache, the persistent plan store and the serving
    workers.  Registers (*slots*) are numbered so every operation writes a
    fresh slot greater than its operands: replaying the parallel op arrays
    front to back is a valid evaluation order, which is all
    :meth:`evaluate` does.
    """

    def __init__(
        self,
        num_slots: int,
        consts: Tuple[Tuple[int, Fraction], ...],
        inputs: Tuple[Tuple[Edge, int], ...],
        opcodes: Tuple[int, ...],
        dsts: Tuple[int, ...],
        lhs: Tuple[int, ...],
        rhs: Tuple[int, ...],
        root: int,
    ) -> None:
        self.num_slots = num_slots
        self.consts = consts
        self.inputs = inputs
        self.opcodes = opcodes
        self.dsts = dsts
        self.lhs = lhs
        self.rhs = rhs
        self.root = root
        #: Lazily packed level segments for the vectorized backend (see
        #: :meth:`_packed_segments`); derived data, dropped from pickles.
        self._segments = None
        self._edge_slot_map: Optional[Dict[Edge, int]] = None

    def __getstate__(self):
        state = dict(self.__dict__)
        state["_segments"] = None
        state["_edge_slot_map"] = None
        return state

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def num_ops(self) -> int:
        """Number of operations on the tape."""
        return len(self.opcodes)

    def num_inputs(self) -> int:
        """Number of edge-probability input slots."""
        return len(self.inputs)

    def describe(self) -> Dict[str, int]:
        """Tape shape summary: slots, inputs, constants and per-opcode counts."""
        counts = {name: 0 for name in OPCODE_NAMES.values()}
        for opcode in self.opcodes:
            counts[OPCODE_NAMES[opcode]] += 1
        return {
            "slots": self.num_slots,
            "inputs": self.num_inputs(),
            "consts": len(self.consts),
            "ops": self.num_ops(),
            **counts,
        }

    def _packed_segments(self) -> Tuple[Tuple[int, List[int], List[int], List[int]], ...]:
        """The ops grouped into data-independent level segments (memoised).

        A slot's *level* is 0 for constants and inputs and
        ``1 + max(operand levels)`` for op destinations, so all operations
        of one level read only slots computed at strictly earlier levels —
        a segment ``(opcode, dsts, lhs, rhs)`` can therefore be executed as
        *one* gather/compute/scatter batch regardless of how many ops it
        packs.  This is what keeps the numpy backend's fixed cost
        proportional to the tape's *depth* (a few dozen segments) instead
        of its length (thousands of ops).
        """
        if self._segments is None:
            level = [0] * self.num_slots
            groups: Dict[Tuple[int, int], Tuple[int, List[int], List[int], List[int]]] = {}
            for opcode, dst, a, b in zip(self.opcodes, self.dsts, self.lhs, self.rhs):
                depth = 1 + (level[a] if opcode == OP_COMPL else max(level[a], level[b]))
                level[dst] = depth
                segment = groups.get((depth, opcode))
                if segment is None:
                    segment = (opcode, [], [], [])
                    groups[(depth, opcode)] = segment
                segment[1].append(dst)
                segment[2].append(a)
                segment[3].append(b)
            self._segments = tuple(
                segment for _key, segment in sorted(groups.items())
            )
        return self._segments

    # ------------------------------------------------------------------
    # evaluation
    # ------------------------------------------------------------------
    def _load(self, probabilities: Mapping[Edge, Number], context: NumericContext):
        """Initial register file: constants plus converted edge probabilities."""
        convert = context.convert
        values: List[Any] = [None] * self.num_slots
        for slot, value in self.consts:
            values[slot] = convert(value)
        for edge, slot in self.inputs:
            values[slot] = convert(probabilities[edge])
        return values

    def _run(self, values: List[Any]) -> None:
        """Replay the op arrays over a scalar register file, in place."""
        for opcode, dst, a, b in zip(self.opcodes, self.dsts, self.lhs, self.rhs):
            if opcode == OP_MUL:
                values[dst] = values[a] * values[b]
            elif opcode == OP_ADD:
                values[dst] = values[a] + values[b]
            elif opcode == OP_COMPL:
                values[dst] = 1 - values[a]
            else:
                values[dst] = values[a] - values[b]

    def evaluate(
        self,
        probabilities: Mapping[Edge, Number],
        precision: Any = None,
    ) -> Number:
        """One valuation: replay the tape over a full edge-probability table.

        ``probabilities`` must cover every edge in :attr:`inputs` (the
        plan-level :meth:`repro.plan.CompiledPlan.evaluate` builds such
        tables from the live instance plus overrides).  Exact-mode results
        are bit-identical to the object-graph evaluator.
        """
        context = resolve_context(precision)
        values = self._load(probabilities, context)
        self._run(values)
        return values[self.root]

    def evaluate_many(
        self,
        tables: Sequence[Mapping[Edge, Number]],
        precision: Any = None,
        backend: str = "auto",
    ) -> List[Number]:
        """A batch of valuations in one structural pass over the tape.

        Each entry of ``tables`` is a full edge-probability table (as in
        :meth:`evaluate`); the result list is index-aligned with it.  The
        pass vectorizes every tape operation across the whole batch: with
        ``backend="auto"`` the float backend uses numpy when importable
        (see :func:`repro.numeric.numpy_module`) and stdlib lists
        otherwise; exact mode always uses stdlib
        :class:`~fractions.Fraction` lanes, preserving bit-identity.
        ``backend="numpy"`` forces numpy (raising
        :class:`~repro.exceptions.PlanError` when unavailable or in exact
        mode); ``backend="stdlib"`` forces the dependency-free path.
        """
        context = resolve_context(precision)
        np, _name = _resolve_backend(backend, context)
        batch = len(tables)
        if batch == 0:
            return []
        convert = context.convert
        if np is not None:
            registers = self._seed_registers(np, batch)
            for edge, slot in self.inputs:
                registers[slot] = [float(table[edge]) for table in tables]
            return self._replay_segments(np, registers)
        values = self._seed_lanes(convert, batch)
        for edge, slot in self.inputs:
            values[slot] = [convert(table[edge]) for table in tables]
        return self._replay_lanes(values)

    def evaluate_overrides(
        self,
        base: Mapping[Edge, Number],
        overrides: Sequence[Optional[Mapping[Edge, Number]]],
        precision: Any = None,
        backend: str = "auto",
    ) -> List[Number]:
        """A batch of valuations given as deltas against one base table.

        The serving-shaped variant of :meth:`evaluate_many`: ``base`` is a
        full edge-probability table and each batch entry is an override
        mapping (``None``/``{}`` for "just the base") whose values are
        already in the backend's number type.  Each input row is seeded
        once from ``base`` and only the overridden cells are rewritten, so
        the per-valuation setup cost scales with the number of overridden
        edges instead of the instance size.  Results are identical to
        building the full per-valuation tables and calling
        :meth:`evaluate_many`; overridden edges the tape never reads are
        ignored (they provably cannot affect the result).
        """
        context = resolve_context(precision)
        np, _name = _resolve_backend(backend, context)
        batch = len(overrides)
        if batch == 0:
            return []
        with current_tracer().span("tape.run") as span:
            if span:
                span.attrs["backend"] = _name
                span.attrs["batch"] = batch
            return self._evaluate_overrides(np, context, base, overrides, batch)

    def _evaluate_overrides(
        self,
        np,
        context: NumericContext,
        base: Mapping[Edge, Number],
        overrides: Sequence[Optional[Mapping[Edge, Number]]],
        batch: int,
    ) -> List[Number]:
        edge_slots = self._edge_slots()
        convert = context.convert
        if np is not None:
            registers = self._seed_registers(np, batch)
            for edge, slot in self.inputs:
                registers[slot] = float(base[edge])
            for lane, delta in enumerate(overrides):
                if not delta:
                    continue
                for edge, value in delta.items():
                    slot = edge_slots.get(edge)
                    if slot is not None:
                        registers[slot, lane] = float(value)
            return self._replay_segments(np, registers)
        values = self._seed_lanes(convert, batch)
        for edge, slot in self.inputs:
            values[slot] = [convert(base[edge])] * batch
        for lane, delta in enumerate(overrides):
            if not delta:
                continue
            for edge, value in delta.items():
                slot = edge_slots.get(edge)
                if slot is not None:
                    values[slot][lane] = convert(value)
        return self._replay_lanes(values)

    # -- batched-backend internals -------------------------------------
    def _edge_slots(self) -> Dict[Edge, int]:
        if self._edge_slot_map is None:
            self._edge_slot_map = dict(self.inputs)
        return self._edge_slot_map

    def _seed_registers(self, np, batch: int):
        """A fresh (slots × batch) register matrix with constants filled in."""
        registers = np.empty((self.num_slots, batch), dtype=float)
        for slot, value in self.consts:
            registers[slot] = float(value)
        return registers

    def _seed_lanes(self, convert, batch: int) -> List[Any]:
        """Fresh per-slot value lanes (stdlib path) with constants filled in."""
        values: List[Any] = [None] * self.num_slots
        for slot, value in self.consts:
            values[slot] = [convert(value)] * batch
        return values

    def _replay_segments(self, np, registers) -> List[float]:
        """Replay the level segments over a register matrix; returns the roots.

        One gather/compute/scatter per segment: the numpy call count scales
        with tape depth, not op count.
        """
        for opcode, dsts, lhs, rhs in self._packed_segments():
            if opcode == OP_MUL:
                registers[dsts] = registers[lhs] * registers[rhs]
            elif opcode == OP_ADD:
                registers[dsts] = registers[lhs] + registers[rhs]
            elif opcode == OP_COMPL:
                registers[dsts] = 1.0 - registers[lhs]
            else:
                registers[dsts] = registers[lhs] - registers[rhs]
        return registers[self.root].tolist()

    def _replay_lanes(self, values: List[Any]) -> List[Number]:
        """Replay the op arrays over stdlib value lanes; returns the roots."""
        for opcode, dst, a, b in zip(self.opcodes, self.dsts, self.lhs, self.rhs):
            if opcode == OP_MUL:
                values[dst] = [x * y for x, y in zip(values[a], values[b])]
            elif opcode == OP_ADD:
                values[dst] = [x + y for x, y in zip(values[a], values[b])]
            elif opcode == OP_COMPL:
                values[dst] = [1 - x for x in values[a]]
            else:
                values[dst] = [x - y for x, y in zip(values[a], values[b])]
        return list(values[self.root])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlanTape(ops={self.num_ops()}, slots={self.num_slots}, "
            f"inputs={self.num_inputs()})"
        )


class TapeEvaluator:
    """Stateful tape evaluation with incremental single-edge updates.

    The tape analogue of :class:`~repro.lineage.ddnnf.CircuitEvaluator`,
    but for *every* tractable plan kind: after :meth:`bind` performs one
    full pass and keeps the register file, :meth:`update` rewrites one
    input slot and replays only the operations transitively reading it.
    The affected-op lists are discovered with one linear scan per edge and
    memoised, and because replayed ops recompute from identical operand
    values, an update stream is bitwise-identical (both backends) to
    re-running the full tape after each change.
    """

    def __init__(self, tape: PlanTape) -> None:
        self.tape = tape
        self._edge_slots: Dict[Edge, int] = dict(tape.inputs)
        self._dependents: Dict[int, Tuple[int, ...]] = {}
        self._values: Optional[List[Any]] = None
        self.context: Optional[NumericContext] = None

    def bind(
        self,
        probabilities: Mapping[Edge, Number],
        precision: Any = None,
    ) -> Number:
        """Full pass over ``probabilities``; keeps the register file."""
        context = resolve_context(precision)
        values = self.tape._load(probabilities, context)
        self.tape._run(values)
        self._values = values
        self.context = context
        return values[self.tape.root]

    def _dependent_ops(self, slot: int) -> Tuple[int, ...]:
        """Op positions transitively reading ``slot`` (memoised linear scan)."""
        cached = self._dependents.get(slot)
        if cached is not None:
            return cached
        tape = self.tape
        affected = {slot}
        positions: List[int] = []
        for index, (opcode, dst, a, b) in enumerate(
            zip(tape.opcodes, tape.dsts, tape.lhs, tape.rhs)
        ):
            if a in affected or (opcode != OP_COMPL and b in affected):
                affected.add(dst)
                positions.append(index)
        result = tuple(positions)
        self._dependents[slot] = result
        return result

    def update(self, edge: Edge, probability: Number) -> Number:
        """Set one edge's probability and replay only the ops depending on it.

        ``probability`` must already be in the bound backend's number type
        (the plan-level :meth:`repro.plan.ComponentPlan.update` converts and
        validates).  An edge the tape never reads leaves the value unchanged
        — the probability provably does not affect the result.  Returns the
        new root value.
        """
        if self._values is None:
            raise PlanError("call bind() before update()")
        slot = self._edge_slots.get(edge)
        if slot is None:
            return self._values[self.tape.root]
        values = self._values
        values[slot] = probability
        tape = self.tape
        opcodes, dsts, lhs, rhs = tape.opcodes, tape.dsts, tape.lhs, tape.rhs
        for index in self._dependent_ops(slot):
            opcode = opcodes[index]
            dst, a, b = dsts[index], lhs[index], rhs[index]
            if opcode == OP_MUL:
                values[dst] = values[a] * values[b]
            elif opcode == OP_ADD:
                values[dst] = values[a] + values[b]
            elif opcode == OP_COMPL:
                values[dst] = 1 - values[a]
            else:
                values[dst] = values[a] - values[b]
        return values[tape.root]

    def current_value(self) -> Number:
        """The root value from the last bind/update."""
        if self._values is None:
            raise PlanError("call bind() before current_value()")
        return self._values[self.tape.root]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TapeEvaluator({self.tape!r})"
