"""Compiled-plan benchmark: re-evaluation and incremental-update workloads.

The serving scenario behind :mod:`repro.plan` is a fleet answering the *same*
queries against an instance whose probabilities drift between rounds (fresh
observations, decaying confidences).  The pre-plan API pays the structural
phase — interval matching, KMP skeletons, d-DNNF compilation — on every
call; a compiled plan pays it once and then reruns only arithmetic.  This
module measures exactly that, plus the incremental single-edge update path:

* ``plan_reuse`` — per workload, ``R`` drift rounds each re-evaluating every
  query: PR-1-style ``solve_many`` (float backend, plan cache disabled)
  versus one ``compile`` followed by ``plan.evaluate`` per round;
* ``incremental`` — a stream of single-edge probability updates answered by
  ``plan.update`` (ancestor-only recomputation on the d-DNNF route) versus a
  full re-solve per update;
* ``tape_batch`` — a batch of probability valuations answered in one
  vectorized pass over the plan's flat tape
  (:meth:`repro.plan.CompiledPlan.evaluate_many`, see :mod:`repro.tape`)
  versus one ``plan.evaluate`` call per valuation, across batch sizes
  1 / 16 / 256.

Every configuration is cross-checked: plan results must be *bit-identical*
to the one-shot API in exact mode and within ``1e-9`` of exact in float
mode.  Results are written to ``BENCH_plans.json``; run it with
``repro bench plans`` or ``python benchmarks/bench_plans.py``.
"""

from __future__ import annotations

import platform
import time
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Callable, Dict, List, Tuple

# Seed, float contract, rng and report serialisation are shared with the
# hot-path benchmark so the two recorded artefacts can never desynchronise.
from repro.bench import BENCH_SEED, FLOAT_TOLERANCE, _rng, write_report
from repro.core.solver import PHomSolver
from repro.graphs.classes import GraphClass
from repro.graphs.digraph import DiGraph, Edge
from repro.probability.prob_graph import ProbabilisticGraph
from repro.workloads.generators import attach_random_probabilities, make_instance, make_query
from repro import __version__


@dataclass
class PlanWorkload:
    """One re-evaluation workload: shared instance, repeated queries, a drift schedule."""

    name: str
    description: str
    instance: ProbabilisticGraph
    queries: List[DiGraph]
    #: Solver keyword overrides (e.g. ``prefer="automaton"`` for the d-DNNF route).
    solver_kwargs: Dict[str, object] = field(default_factory=dict)


def build_plan_workloads(instance_size: int, num_queries: int) -> List[PlanWorkload]:
    """Three drifting-probability workloads, one per structural phase kind."""
    workloads: List[PlanWorkload] = []

    # Labeled 1WP queries on a downward tree: KMP skeletons (Prop 4.10).
    rng = _rng(1)
    dwt = make_instance(GraphClass.DOWNWARD_TREE, True, instance_size, rng)
    workloads.append(
        PlanWorkload(
            name="labeled-dwt",
            description=f"labeled 1WP queries on a {instance_size}-vertex downward tree",
            instance=attach_random_probabilities(dwt, rng),
            queries=[
                make_query(GraphClass.ONE_WAY_PATH, True, 3 + (i % 3), rng)
                for i in range(num_queries)
            ],
        )
    )

    # Connected labeled queries on a two-way path: interval matching (Prop 4.11).
    rng = _rng(2)
    two_wp = make_instance(GraphClass.TWO_WAY_PATH, True, max(instance_size // 2, 4), rng)
    workloads.append(
        PlanWorkload(
            name="connected-2wp",
            description=(
                f"connected labeled queries on a {max(instance_size // 2, 4)}-edge two-way path"
            ),
            instance=attach_random_probabilities(two_wp, rng),
            queries=[
                make_query(GraphClass.TWO_WAY_PATH, True, 2 + (i % 2), rng)
                for i in range(num_queries)
            ],
        )
    )

    # Unlabeled tree queries on a polytree via the tree-automaton d-DNNF
    # route (Prop 5.4/5.5): the compiled circuit is the structural phase.
    rng = _rng(3)
    polytree = make_instance(GraphClass.POLYTREE, False, max(instance_size // 2, 6), rng)
    workloads.append(
        PlanWorkload(
            name="unlabeled-polytree-ddnnf",
            description=(
                f"unlabeled tree queries on a {max(instance_size // 2, 6) + 1}-vertex polytree, "
                "automaton/d-DNNF route"
            ),
            instance=attach_random_probabilities(polytree, rng),
            queries=[
                make_query(GraphClass.DOWNWARD_TREE, False, 2 + (i % 3), rng)
                for i in range(num_queries)
            ],
            solver_kwargs={"prefer": "automaton"},
        )
    )
    return workloads


def _drift_schedule(
    instance: ProbabilisticGraph, rounds: int, rng, edges_per_round: int = 4
) -> List[List[Tuple[Edge, Fraction]]]:
    """Per round, a batch of edge-probability changes (deterministic from the rng)."""
    edges = instance.edges()
    schedule: List[List[Tuple[Edge, Fraction]]] = []
    for _ in range(rounds):
        changes = []
        for _ in range(min(edges_per_round, len(edges))):
            edge = rng.choice(edges)
            changes.append((edge, Fraction(rng.randint(1, 15), 16)))
        schedule.append(changes)
    return schedule


def _time(fn: Callable[[], object]) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_plan_workload(workload: PlanWorkload, rounds: int) -> Dict[str, object]:
    """Time plan re-evaluation against PR-1-style ``solve_many`` under drift."""
    instance = workload.instance
    queries = workload.queries
    baseline_solver = PHomSolver(plan_cache_size=0, **workload.solver_kwargs)
    plan_solver = PHomSolver(**workload.solver_kwargs)
    schedule = _drift_schedule(instance, rounds, _rng(99))

    def apply_round(index: int) -> None:
        for edge, probability in schedule[index]:
            instance.set_probability(edge, probability)

    # Structural phase: compile once per distinct query (through the cache).
    compile_seconds = _time(
        lambda: [plan_solver.compile(query, instance) for query in queries]
    )
    plans = [plan_solver.compile(query, instance) for query in queries]

    # Correctness contract, checked on every drift round before timing:
    # exact plan results bit-identical to the cache-less one-shot API, float
    # plan results within FLOAT_TOLERANCE of exact.
    for index in range(rounds):
        apply_round(index)
        for query, plan in zip(queries, plans):
            exact = baseline_solver.solve(query, instance).probability
            if plan.evaluate() != exact:
                raise AssertionError(
                    f"exact plan result diverged on workload {workload.name}"
                )
            drift = abs(float(exact) - plan.evaluate(precision="float"))
            if drift > FLOAT_TOLERANCE:
                raise AssertionError(
                    f"float plan result diverged by {drift} on workload {workload.name}"
                )

    def baseline_run() -> None:
        for index in range(rounds):
            apply_round(index)
            baseline_solver.solve_many(queries, instance, precision="float")

    def plan_run() -> None:
        for index in range(rounds):
            apply_round(index)
            for plan in plans:
                plan.evaluate(precision="float")

    baseline_seconds = _time(baseline_run)
    plan_seconds = _time(plan_run)
    evaluations = rounds * len(queries)
    speedup = baseline_seconds / plan_seconds if plan_seconds > 0 else float("inf")
    return {
        "name": workload.name,
        "description": workload.description,
        "num_queries": len(queries),
        "rounds": rounds,
        "instance_vertices": instance.graph.num_vertices(),
        "instance_edges": instance.graph.num_edges(),
        "compile_seconds": round(compile_seconds, 6),
        "modes": {
            "solve_many_float": {
                "seconds": round(baseline_seconds, 6),
                "evals_per_sec": round(evaluations / baseline_seconds, 2)
                if baseline_seconds > 0
                else float("inf"),
            },
            "plan_evaluate_float": {
                "seconds": round(plan_seconds, 6),
                "evals_per_sec": round(evaluations / plan_seconds, 2)
                if plan_seconds > 0
                else float("inf"),
            },
        },
        "plan_reuse_speedup": round(speedup, 2),
    }


def run_incremental_benchmark(instance_size: int, updates: int) -> Dict[str, object]:
    """Single-edge updates: ``plan.update`` vs a full re-solve per change.

    Uses the d-DNNF route (``prefer="automaton"``), where ``plan.update``
    recomputes only the ancestors of the touched variable through the
    circuit's reverse-wire index.
    """
    rng = _rng(7)
    graph = make_instance(GraphClass.POLYTREE, False, max(instance_size, 6), rng)
    instance = attach_random_probabilities(graph, rng)
    query = make_query(GraphClass.DOWNWARD_TREE, False, 3, rng)

    baseline_solver = PHomSolver(plan_cache_size=0, prefer="automaton")
    plan_solver = PHomSolver(prefer="automaton")
    plan = plan_solver.compile(query, instance)

    edges = instance.edges()
    schedule = [
        (rng.choice(edges), Fraction(rng.randint(1, 15), 16)) for _ in range(updates)
    ]

    # Correctness: both paths agree on every update of a prefix of the stream.
    check = max(1, updates // 10)
    max_error = 0.0
    for edge, probability in schedule[:check]:
        instance.set_probability(edge, probability)
        full = baseline_solver.solve(query, instance, precision="float").probability
        incremental = plan.update(edge, probability, precision="float")
        max_error = max(max_error, abs(full - incremental))
    if max_error > FLOAT_TOLERANCE:
        raise AssertionError(
            f"incremental update diverged from full re-solve by {max_error}"
        )
    # Exact-mode spot check: a fresh serving table must reproduce the exact
    # one-shot result bit-identically after the drift applied above.
    if plan.evaluate() != baseline_solver.solve(query, instance).probability:
        raise AssertionError("exact plan result diverged after incremental updates")

    def full_run() -> None:
        for edge, probability in schedule:
            instance.set_probability(edge, probability)
            baseline_solver.solve(query, instance, precision="float")

    def incremental_run() -> None:
        for edge, probability in schedule:
            plan.update(edge, probability, precision="float")

    full_seconds = _time(full_run)
    incremental_seconds = _time(incremental_run)
    speedup = (
        full_seconds / incremental_seconds if incremental_seconds > 0 else float("inf")
    )
    return {
        "description": (
            f"single-edge updates on a {graph.num_vertices()}-vertex polytree, "
            "d-DNNF route"
        ),
        "updates": updates,
        "instance_vertices": graph.num_vertices(),
        "instance_edges": graph.num_edges(),
        "modes": {
            "full_resolve_float": {
                "seconds": round(full_seconds, 6),
                "updates_per_sec": round(updates / full_seconds, 2)
                if full_seconds > 0
                else float("inf"),
            },
            "plan_update_float": {
                "seconds": round(incremental_seconds, 6),
                "updates_per_sec": round(updates / incremental_seconds, 2)
                if incremental_seconds > 0
                else float("inf"),
            },
        },
        "incremental_speedup": round(speedup, 2),
        "float_max_abs_error": max_error,
    }


def run_tape_benchmark(
    instance_size: int, batch_sizes: Tuple[int, ...] = (1, 16, 256)
) -> Dict[str, object]:
    """Batched tape evaluation vs one ``plan.evaluate`` call per valuation.

    Uses the d-DNNF route (the largest arithmetic half) with a floor on the
    instance size so even smoke runs exercise a real tape.  Before timing,
    the exact-mode contract is asserted *in the bench*: ``evaluate_many``
    must be bit-identical to looped ``evaluate`` calls, and the float
    backend must stay within ``FLOAT_TOLERANCE`` of the per-call float
    path.  Each valuation overrides a couple of edge probabilities — the
    serving drift shape the batched path is built for.
    """
    from repro.numeric import numpy_module

    rng = _rng(13)
    size = max(instance_size, 60)
    graph = make_instance(GraphClass.POLYTREE, False, size, rng)
    instance = attach_random_probabilities(graph, rng)
    query = make_query(GraphClass.DOWNWARD_TREE, False, 4, rng)
    solver = PHomSolver(prefer="automaton")
    plan = solver.compile(query, instance)
    tape = plan.tape()

    edges = instance.edges()
    largest = max(batch_sizes)
    batch = [
        {rng.choice(edges): Fraction(rng.randint(1, 15), 16) for _ in range(2)}
        for _ in range(largest)
    ]

    # Correctness contract, checked before any timing.  Exact mode must be
    # bit-identical to the object-graph evaluator (`==` on Fractions) —
    # this is the acceptance gate for the tape backend itself.
    check = batch[: min(largest, 32)]
    if plan.evaluate_many(check) != [plan.evaluate(overrides) for overrides in check]:
        raise AssertionError(
            "exact evaluate_many diverged from looped plan.evaluate"
        )
    float_loop = [plan.evaluate(overrides, precision="float") for overrides in check]
    float_many = plan.evaluate_many(check, precision="float")
    drift = max(abs(a - b) for a, b in zip(float_loop, float_many))
    if drift > FLOAT_TOLERANCE:
        raise AssertionError(
            f"float evaluate_many drifted {drift} from looped plan.evaluate"
        )

    curve = []
    for batch_size in batch_sizes:
        subset = batch[:batch_size]
        repeats = 3
        baseline_seconds = min(
            _time(
                lambda: [
                    plan.evaluate(overrides, precision="float")
                    for overrides in subset
                ]
            )
            for _ in range(repeats)
        )
        tape_seconds = min(
            _time(lambda: plan.evaluate_many(subset, precision="float"))
            for _ in range(repeats)
        )
        speedup = baseline_seconds / tape_seconds if tape_seconds > 0 else float("inf")
        curve.append(
            {
                "batch": batch_size,
                "evaluate_seconds": round(baseline_seconds, 6),
                "evaluate_many_seconds": round(tape_seconds, 6),
                "speedup": round(speedup, 2),
            }
        )
    return {
        "description": (
            f"batched tape re-evaluation on a {graph.num_vertices()}-vertex "
            "polytree, d-DNNF route"
        ),
        "backend": "numpy" if numpy_module() is not None else "stdlib",
        "tape": tape.describe(),
        "instance_vertices": graph.num_vertices(),
        "instance_edges": graph.num_edges(),
        "tape_batch": curve,
        "batched_speedup": curve[-1]["speedup"],
        "exact_bit_identical": True,
        "float_max_abs_error": drift,
    }


def run_plan_benchmarks(
    instance_size: int = 60,
    num_queries: int = 20,
    rounds: int = 5,
    updates: int = 200,
) -> Dict[str, object]:
    """Run every plan workload plus the incremental stream; return the report."""
    workload_reports = [
        run_plan_workload(workload, rounds)
        for workload in build_plan_workloads(instance_size, num_queries)
    ]
    incremental = run_incremental_benchmark(max(instance_size // 2, 6), updates)
    tape_batch = run_tape_benchmark(instance_size)
    return {
        "benchmark": "plans",
        "version": __version__,
        "python": platform.python_version(),
        "config": {
            "instance_size": instance_size,
            "num_queries": num_queries,
            "rounds": rounds,
            "updates": updates,
            "seed": BENCH_SEED,
            "float_tolerance": FLOAT_TOLERANCE,
        },
        "workloads": workload_reports,
        "incremental": incremental,
        "tape": tape_batch,
        "summary": {
            "min_plan_reuse_speedup": min(
                w["plan_reuse_speedup"] for w in workload_reports
            ),
            "incremental_update_speedup": incremental["incremental_speedup"],
            "tape_batched_speedup": tape_batch["batched_speedup"],
            "contract": (
                "exact plan results bit-identical to the one-shot API "
                "(including batched tape evaluation); "
                f"float within {FLOAT_TOLERANCE}"
            ),
        },
    }


def check_plan_thresholds(
    report: Dict[str, object],
    min_reuse_speedup: float = 0.0,
    min_incremental_speedup: float = 0.0,
    min_tape_speedup: float = 0.0,
) -> None:
    """Raise AssertionError when a recorded speedup falls below a threshold."""
    summary = report["summary"]
    reuse = summary["min_plan_reuse_speedup"]
    if reuse < min_reuse_speedup:
        raise AssertionError(
            f"plan reuse speedup {reuse}x is below the required {min_reuse_speedup}x"
        )
    incremental = summary["incremental_update_speedup"]
    if incremental < min_incremental_speedup:
        raise AssertionError(
            f"incremental update speedup {incremental}x is below the required "
            f"{min_incremental_speedup}x"
        )
    tape = summary["tape_batched_speedup"]
    if tape < min_tape_speedup:
        raise AssertionError(
            f"batched tape speedup {tape}x is below the required "
            f"{min_tape_speedup}x"
        )


#: Serialise the report to disk — same format as the hot-path benchmark.
write_plan_report = write_report


def format_plan_report(report: Dict[str, object]) -> str:
    """A terse human-readable rendering of the report."""
    lines = [f"compiled-plan benchmark (seed {report['config']['seed']})"]
    for workload in report["workloads"]:
        lines.append(f"  {workload['name']}: {workload['description']}")
        for name, numbers in workload["modes"].items():
            lines.append(f"    {name:<22} {numbers['evals_per_sec']:>12.1f} evals/sec")
        lines.append(
            f"    plan reuse speedup     {workload['plan_reuse_speedup']}x "
            f"(compile {workload['compile_seconds']}s, amortised)"
        )
    incremental = report["incremental"]
    lines.append(f"  incremental: {incremental['description']}")
    for name, numbers in incremental["modes"].items():
        lines.append(f"    {name:<22} {numbers['updates_per_sec']:>12.1f} updates/sec")
    lines.append(
        f"    incremental speedup    {incremental['incremental_speedup']}x vs full re-solve"
    )
    tape = report["tape"]
    lines.append(f"  tape: {tape['description']} ({tape['backend']} backend)")
    for point in tape["tape_batch"]:
        lines.append(
            f"    batch {point['batch']:>4}            "
            f"{point['speedup']:>8.1f}x vs per-call evaluate"
        )
    summary = report["summary"]
    lines.append(
        f"  minimum plan reuse speedup vs solve_many(float): "
        f"{summary['min_plan_reuse_speedup']}x"
    )
    lines.append(
        f"  batched tape speedup (batch {tape['tape_batch'][-1]['batch']}): "
        f"{summary['tape_batched_speedup']}x"
    )
    return "\n".join(lines)
