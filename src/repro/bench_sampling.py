"""Sampling benchmark: Karp–Luby estimation versus exact brute force.

The intractable cells of Tables 1–3 used to be answered only by enumerating
all ``2^m`` possible worlds, which stops being usable around 20 probabilistic
edges.  This suite measures what the sampling subsystem buys on exactly those
instances:

* ``speedup`` — for layered intractable instances of growing edge count
  (:func:`repro.workloads.generators.intractable_workload`), the wall-clock
  of one exact brute-force evaluation versus one ``precision="approx"``
  solve (Karp–Luby with the recorded ``(ε, δ)`` contract and a pinned seed),
  together with the achieved relative error — the estimate must land within
  ``ε`` of the exact answer;
* ``accuracy_curve`` — on a reference instance the brute force can still
  verify, the absolute error of the Karp–Luby estimator and of the naive
  possible-world sampler at a ladder of fixed sample budgets, showing the
  ``1/√N`` convergence and the importance sampler's advantage.

Results are written to ``BENCH_sampling.json``; run with
``repro bench sampling`` or ``python benchmarks/bench_sampling.py``.  The
``--min-sampling-speedup`` / ``--max-epsilon-ratio`` flags turn regressions
into a non-zero exit code (the CI smoke gate).
"""

from __future__ import annotations

import platform
import time
from typing import Dict, List, Optional, Sequence

# Seed and report serialisation are shared with the other benchmark suites so
# the recorded artefacts cannot desynchronise.
from repro.bench import BENCH_SEED, write_report
from repro.approx import ApproxParams, naive_phom_estimate
from repro.core.solver import PHomSolver
from repro.plan import FallbackPlan
from repro.workloads.generators import intractable_workload
from repro import __version__

#: The (ε, δ) contract the recorded runs are checked against.
BENCH_EPSILON = 0.1
BENCH_DELTA = 0.05

#: Edge counts of the speedup ladder; the last one is past the point where
#: brute force is barely usable (2^20 worlds).
SPEEDUP_EDGE_SIZES = (12, 16, 20)
SMOKE_EDGE_SIZES = (8, 12)

#: Fixed sample budgets of the accuracy curve.
CURVE_SAMPLE_BUDGETS = (1_000, 4_000, 16_000, 64_000)
SMOKE_CURVE_BUDGETS = (500, 2_000)

#: Edge count of the rare-event curve instance (probabilities ≤ 1/8, so the
#: query probability is small and relative error separates the estimators).
CURVE_EDGES = 16
SMOKE_CURVE_EDGES = 10


def _brute_force_seconds(solver: PHomSolver, workload) -> Dict[str, float]:
    """One exact float-backend brute-force evaluation, timed."""
    import warnings

    from repro.exceptions import IntractableFallbackWarning

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", IntractableFallbackWarning)
        start = time.perf_counter()
        exact = float(
            solver.probability(workload.query, workload.instance, method="brute-force-worlds")
        )
        elapsed = time.perf_counter() - start
    return {"exact": exact, "seconds": elapsed}


def run_sampling_benchmarks(
    edge_sizes: Optional[Sequence[int]] = None,
    curve_budgets: Optional[Sequence[int]] = None,
    epsilon: float = BENCH_EPSILON,
    delta: float = BENCH_DELTA,
    seed: int = BENCH_SEED,
    smoke: bool = False,
) -> Dict[str, object]:
    """Run the full suite and return the JSON-serialisable report."""
    if edge_sizes is None:
        edge_sizes = SMOKE_EDGE_SIZES if smoke else SPEEDUP_EDGE_SIZES
    if curve_budgets is None:
        curve_budgets = SMOKE_CURVE_BUDGETS if smoke else CURVE_SAMPLE_BUDGETS

    rows: List[Dict[str, object]] = []
    for edges in edge_sizes:
        # Moderate edge probabilities (≤ 6/16) keep the union event away
        # from saturation, so the recorded relative errors are meaningful.
        workload = intractable_workload(edges, rng=seed + edges, max_numerator=6)
        exact_solver = PHomSolver(precision="float")
        brute = _brute_force_seconds(exact_solver, workload)

        approx_solver = PHomSolver(
            precision="approx", epsilon=epsilon, delta=delta, seed=seed
        )
        start = time.perf_counter()
        result = approx_solver.solve(workload.query, workload.instance)
        approx_seconds = time.perf_counter() - start
        if result.method != "karp-luby":
            raise AssertionError(
                f"expected the dispatcher to sample the intractable workload, "
                f"got method {result.method!r}"
            )
        estimate = float(result.probability)
        relative_error = (
            abs(estimate - brute["exact"]) / brute["exact"] if brute["exact"] else estimate
        )
        plan = approx_solver.compile(workload.query, workload.instance)
        rows.append(
            {
                "uncertain_edges": edges,
                "possible_worlds": 2 ** edges,
                "lineage_clauses": len(plan.lineage().clauses)
                if isinstance(plan, FallbackPlan)
                else None,
                "exact": brute["exact"],
                "estimate": estimate,
                "relative_error": relative_error,
                "epsilon": epsilon,
                "delta": delta,
                "within_epsilon": relative_error <= epsilon,
                "notes": result.notes,
                "brute_force_seconds": brute["seconds"],
                "approx_seconds": approx_seconds,
                "speedup": brute["seconds"] / approx_seconds if approx_seconds else None,
            }
        )
    # Accuracy-vs-samples curve on a *rare-event* instance (probabilities
    # ≤ 1/8): fixed budgets, no (ε, δ) schedule, Karp–Luby vs the naive
    # world sampler.  Small probabilities are where the importance sampler
    # earns its keep — naive sampling barely ever sees a satisfying world.
    curve_edges = SMOKE_CURVE_EDGES if smoke else CURVE_EDGES
    workload = intractable_workload(curve_edges, rng=seed, max_numerator=2)
    exact_solver = PHomSolver(precision="float")
    exact = _brute_force_seconds(exact_solver, workload)["exact"]
    solver = PHomSolver(precision="approx", epsilon=epsilon, delta=delta, seed=seed)
    plan = solver.compile(workload.query, workload.instance)
    points: List[Dict[str, object]] = []
    for budget in curve_budgets:
        params = ApproxParams(epsilon=epsilon, delta=delta, seed=seed + budget)
        kl = plan.estimate(params=params, num_samples=budget)
        naive = naive_phom_estimate(
            workload.query, workload.instance, params, num_samples=budget
        )
        points.append(
            {
                "samples": budget,
                "karp_luby_estimate": kl.value,
                "karp_luby_rel_error": abs(kl.value - exact) / exact if exact else kl.value,
                "naive_estimate": naive.value,
                "naive_rel_error": abs(naive.value - exact) / exact if exact else naive.value,
            }
        )

    return {
        "suite": "sampling",
        "meta": {
            "version": __version__,
            "python": platform.python_version(),
            "platform": platform.platform(),
            "seed": seed,
            "epsilon": epsilon,
            "delta": delta,
            "smoke": smoke,
            "contract": (
                "relative error <= epsilon with probability >= 1 - delta "
                "(Karp-Luby over the match lineage; pinned seed makes the "
                "recorded run reproducible)"
            ),
        },
        "speedup": rows,
        "accuracy_curve": {
            "uncertain_edges": curve_edges,
            "rare_event": True,
            "exact": exact,
            "points": points,
        },
    }


def check_sampling_thresholds(
    report: Dict[str, object],
    min_speedup: float = 0.0,
    max_epsilon_ratio: float = 0.0,
) -> None:
    """Raise ``AssertionError`` when the recorded run violates the gates.

    ``min_speedup`` applies to the largest instance of the speedup ladder
    (where brute force hurts most); ``max_epsilon_ratio`` bounds
    ``relative_error / epsilon`` on *every* instance — ``1.0`` asserts the
    ``(ε, δ)`` contract itself held on the pinned-seed run.
    """
    rows = report["speedup"]
    if max_epsilon_ratio > 0:
        for row in rows:
            ratio = row["relative_error"] / row["epsilon"]
            if ratio > max_epsilon_ratio:
                raise AssertionError(
                    f"estimate on the {row['uncertain_edges']}-edge instance is "
                    f"{ratio:.2f}x epsilon away from exact "
                    f"(|{row['estimate']:.6f} - {row['exact']:.6f}| vs "
                    f"epsilon={row['epsilon']})"
                )
    if min_speedup > 0 and rows:
        largest = rows[-1]
        if largest["speedup"] is None or largest["speedup"] < min_speedup:
            raise AssertionError(
                f"Karp-Luby speedup on the {largest['uncertain_edges']}-edge "
                f"instance is {largest['speedup']}x, below the required "
                f"{min_speedup}x"
            )


def format_sampling_report(report: Dict[str, object]) -> str:
    """A human-readable summary of the recorded run."""
    lines = [
        "sampling benchmark (Karp-Luby vs exact brute force)",
        f"  contract: eps={report['meta']['epsilon']}, delta={report['meta']['delta']}, "
        f"seed={report['meta']['seed']}",
    ]
    for row in report["speedup"]:
        speedup = "n/a" if row["speedup"] is None else f"{row['speedup']:.1f}x"
        lines.append(
            f"  {row['uncertain_edges']:>3} edges (2^{row['uncertain_edges']} worlds, "
            f"{row['lineage_clauses']} clauses): "
            f"exact={row['exact']:.6f} estimate={row['estimate']:.6f} "
            f"rel.err={row['relative_error']:.4f} | "
            f"brute {row['brute_force_seconds']:.2f}s vs approx "
            f"{row['approx_seconds']:.2f}s = {speedup}"
        )
    curve = report["accuracy_curve"]
    lines.append(
        f"  accuracy curve on the rare-event {curve['uncertain_edges']}-edge "
        f"instance (exact={curve['exact']:.6f}):"
    )
    for point in curve["points"]:
        lines.append(
            f"    {point['samples']:>7} samples: karp-luby rel.err="
            f"{point['karp_luby_rel_error']:.4f}, naive rel.err={point['naive_rel_error']:.4f}"
        )
    return "\n".join(lines)


def write_sampling_report(report: Dict[str, object], path: str) -> None:
    """Serialise the report (shared JSON writer with the other suites)."""
    write_report(report, path)
