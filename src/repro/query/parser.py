"""Parser for the conjunctive-query surface language.

Grammar (whitespace-insensitive, ``#`` comments run to end of line)::

    query    :=  element ("," element)*
    element  :=  atom | chain | IDENT
    atom     :=  IDENT "(" IDENT "," IDENT ")"          R(x, y)
    chain    :=  IDENT (arrow IDENT)+                   x -[R.S]-> y -[T]-> z
    arrow    :=  "-[" path "]->"                        forward steps
              |  "<-[" path "]-"                        two-way (reversed) steps
              |  "->"                                   one unlabeled edge
              |  "<-"                                   one reversed unlabeled edge
    path     :=  step ("." step)*
    step     :=  IDENT ("{" INT "}")?                   R, R{3}

A lone ``IDENT`` element declares a variable with no atoms (an isolated
query vertex, which maps anywhere).  Regular-path sugar expands to a chain
of plain atoms through fresh intermediate variables (named ``_1``, ``_2``,
... , skipping names the query already uses); a two-way arrow
``x <-[R]- y`` is oriented at parse time into the forward atom ``R(y, x)``.

Errors raise :class:`~repro.exceptions.QueryParseError` with the exact
source offset, rendered as a caret diagnostic.
"""

from __future__ import annotations

import re
from typing import List, Optional, Sequence, Tuple, Union

from repro.exceptions import QueryParseError
from repro.graphs.digraph import DiGraph, UNLABELED
from repro.query.ir import Atom, QueryIR

#: Token kinds, longest-match first (``-[`` must win over ``-``).
_TOKEN_PATTERN = re.compile(
    r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<int>\d+)
  | (?P<larrowbracket><-\[)
  | (?P<rbracketarrow>\]->)
  | (?P<lbracketarrow>-\[)
  | (?P<rarrowbracket>\]-)
  | (?P<rarrow>->)
  | (?P<larrow><-)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<lbrace>\{)
  | (?P<rbrace>\})
    """,
    re.VERBOSE,
)


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int) -> None:
        self.kind = kind
        self.value = value
        self.position = position


def _tokenize(text: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_PATTERN.match(text, position)
        if match is None:
            raise QueryParseError(
                f"unexpected character {text[position]!r}", text, position
            )
        if match.lastgroup != "ws":
            tokens.append(_Token(match.lastgroup, match.group(), position))
        position = match.end()
    tokens.append(_Token("eof", "", len(text)))
    return tokens


#: One step of a regular-path expression: (label, repetition count).
_Step = Tuple[str, int]

#: A raw chain arrow before expansion: (steps, reversed?, span start).
_Arrow = Tuple[Tuple[_Step, ...], bool, int]


class _Parser:
    """Recursive-descent parser over the token list."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token helpers -------------------------------------------------
    def _peek(self) -> _Token:
        return self.tokens[self.index]

    def _advance(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def _expect(self, kind: str, what: str) -> _Token:
        token = self._peek()
        if token.kind != kind:
            found = repr(token.value) if token.kind != "eof" else "end of input"
            raise QueryParseError(
                f"expected {what}, found {found}", self.text, token.position
            )
        return self._advance()

    def _fail(self, message: str) -> QueryParseError:
        return QueryParseError(message, self.text, self._peek().position)

    # -- grammar productions -------------------------------------------
    def parse(self) -> QueryIR:
        if self._peek().kind == "eof":
            raise self._fail("empty query: expected at least one atom or variable")
        atoms: List[Atom] = []
        chains: List[Tuple[List[str], List[_Arrow]]] = []
        free: List[str] = []
        while True:
            self._element(atoms, chains, free)
            if self._peek().kind == "comma":
                self._advance()
                continue
            self._expect("eof", "',' or end of query")
            break
        atoms = self._expand_chains(atoms, chains, free)
        # A variable is "free" only if no atom ended up mentioning it.
        mentioned = {v for atom in atoms for v in (atom.source, atom.target)}
        free_vertices = tuple(
            sorted({name for name in free if name not in mentioned})
        )
        return QueryIR(atoms=tuple(atoms), free_vertices=free_vertices, text=self.text)

    def _element(
        self,
        atoms: List[Atom],
        chains: List[Tuple[List[str], List[_Arrow]]],
        free: List[str],
    ) -> None:
        start = self._expect("ident", "a label or a variable")
        kind = self._peek().kind
        if kind == "lparen":
            atoms.append(self._atom_body(start))
        elif kind in ("lbracketarrow", "larrowbracket", "rarrow", "larrow"):
            chains.append(self._chain_body(start))
        elif kind in ("comma", "eof"):
            free.append(start.value)
        else:
            raise self._fail(
                f"expected '(', an arrow, ',' or end of query after {start.value!r}"
            )

    def _atom_body(self, label: _Token) -> Atom:
        self._expect("lparen", "'('")
        source = self._expect("ident", "a variable name")
        self._expect("comma", f"',' between the arguments of {label.value!r}")
        target = self._expect("ident", "a variable name")
        close = self._expect("rparen", "')'")
        return Atom(
            label.value,
            source.value,
            target.value,
            span=(label.position, close.position + 1),
        )

    def _chain_body(self, start: _Token) -> Tuple[List[str], List[_Arrow]]:
        """A chain ``x -[..]-> y <-[..]- z ...``: waypoints plus arrows."""
        waypoints = [start.value]
        arrows: List[_Arrow] = []
        while True:
            token = self._peek()
            if token.kind == "rarrow":
                self._advance()
                steps: Tuple[_Step, ...] = ((UNLABELED, 1),)
                reversed_arrow = False
            elif token.kind == "larrow":
                self._advance()
                steps = ((UNLABELED, 1),)
                reversed_arrow = True
            elif token.kind == "lbracketarrow":
                self._advance()
                steps = self._path()
                self._expect("rbracketarrow", "']->' closing the forward arrow")
                reversed_arrow = False
            elif token.kind == "larrowbracket":
                self._advance()
                steps = self._path()
                self._expect("rarrowbracket", "']-' closing the two-way arrow")
                reversed_arrow = True
            else:
                break
            target = self._expect("ident", "a variable name after the arrow")
            arrows.append((steps, reversed_arrow, token.position))
            waypoints.append(target.value)
        return waypoints, arrows

    def _path(self) -> Tuple[_Step, ...]:
        steps: List[_Step] = [self._step()]
        while self._peek().kind == "dot":
            self._advance()
            steps.append(self._step())
        return tuple(steps)

    def _step(self) -> _Step:
        label = self._expect("ident", "an edge label")
        count = 1
        if self._peek().kind == "lbrace":
            self._advance()
            number = self._expect("int", "a repetition count")
            self._expect("rbrace", "'}' closing the repetition")
            count = int(number.value)
            if count < 1:
                raise QueryParseError(
                    f"repetition {label.value}{{{count}}} must be at least 1",
                    self.text,
                    number.position,
                )
        return (label.value, count)

    # -- sugar expansion -----------------------------------------------
    def _expand_chains(
        self,
        atoms: List[Atom],
        chains: List[Tuple[List[str], List[_Arrow]]],
        free: Sequence[str],
    ) -> List[Atom]:
        """Expand chain arrows into plain atoms through fresh variables.

        Fresh intermediates are named ``_1``, ``_2``, ... — numbering is
        global across the query and skips every name the query mentions
        anywhere, so expansion can never capture a user variable.
        """
        used = {name for atom in atoms for name in (atom.source, atom.target)}
        used.update(free)
        for waypoints, _arrows in chains:
            used.update(waypoints)
        counter = 0

        def fresh() -> str:
            nonlocal counter
            while True:
                counter += 1
                name = f"_{counter}"
                if name not in used:
                    used.add(name)
                    return name

        expanded = list(atoms)
        for waypoints, arrows in chains:
            for hop, (steps, reversed_arrow, position) in enumerate(arrows):
                left, right = waypoints[hop], waypoints[hop + 1]
                labels = [label for label, count in steps for _ in range(count)]
                if reversed_arrow:
                    # ``x <-[R.S]- y`` reads as the forward path from y to x.
                    left, right = right, left
                nodes = [left] + [fresh() for _ in range(len(labels) - 1)] + [right]
                for label, source, target in zip(labels, nodes, nodes[1:]):
                    expanded.append(
                        Atom(label, source, target, span=(position, position))
                    )
        return expanded


def parse_query(text: str) -> QueryIR:
    """Parse a query-language string into a :class:`~repro.query.ir.QueryIR`.

    >>> ir = parse_query("R(x, y), S(y, z)")
    >>> [atom.format() for atom in ir.atoms]
    ['R(x, y)', 'S(y, z)']
    >>> parse_query("x -[R.S]-> y").format()
    'R(x, _1), S(_1, y)'
    >>> parse_query("x <-[R]- y").format()
    'R(y, x)'
    """
    return _Parser(text).parse()


def parse_query_graph(text: str) -> DiGraph:
    """Parse a query-language string and lower it to a query graph."""
    return parse_query(text).to_graph()


def as_query_graph(query: Union[str, DiGraph]) -> DiGraph:
    """Coerce a query given as a string or a graph to a query graph.

    This is the adapter behind the string-accepting public entry points
    (:func:`repro.phom_probability`, :meth:`repro.PHomSolver.solve`, the
    serving layer): strings go through the parser, graphs pass through
    unchanged.
    """
    if isinstance(query, str):
        return parse_query_graph(query)
    if isinstance(query, DiGraph):
        return query
    raise QueryParseError(
        f"a query must be a DiGraph or a query-language string, "
        f"got {type(query).__name__}"
    )
