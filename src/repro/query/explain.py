"""Explain how a query will be classified and dispatched.

``repro parse --explain`` (and the tests behind it) need to answer, without
touching a concrete instance: *given this query and an instance class, which
cell of Tables 1–3 applies, and which algorithm will the dispatcher run?*
:func:`explain_query` packages the answer — the parsed query, its core, the
classification cell before and after minimization, and the dispatch route —
by mirroring the branch order of
:meth:`repro.core.solver.PHomSolver._compile_plan` at the class level.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from repro.classification.tables import CellResult, Setting, classify_cell
from repro.graphs.classes import (
    GraphClass,
    class_includes,
    graph_class_of,
    is_one_way_path,
)
from repro.graphs.digraph import DiGraph, UNLABELED
from repro.query.ir import QueryIR, format_query, ir_from_graph
from repro.query.minimize import NormalizedQuery, normalize
from repro.query.parser import parse_query


def dispatch_preview(
    query: DiGraph, instance_class: GraphClass, labeled: bool
) -> Tuple[str, Optional[str]]:
    """The ``(method, proposition)`` the dispatcher would pick for the pair.

    Mirrors the route order of the solver's plan compiler for a query graph
    against *any* instance of ``instance_class`` (trivial label-mismatch
    verdicts need a concrete instance and are not predicted here).
    """
    if query.num_edges() == 0:
        return ("trivial-edgeless-query", None)
    instance_2wp = class_includes(instance_class, GraphClass.UNION_TWO_WAY_PATH)
    instance_dwt = class_includes(instance_class, GraphClass.UNION_DOWNWARD_TREE)
    instance_pt = class_includes(instance_class, GraphClass.UNION_POLYTREE)
    if query.is_weakly_connected():
        if instance_2wp:
            return ("connected-2wp", "Proposition 4.11 (+ Lemma 3.7)")
        if instance_dwt and is_one_way_path(query):
            return ("labeled-dwt", "Proposition 4.10 (+ Lemma 3.7)")
    if not labeled and instance_dwt:
        return ("graded-collapse", "Proposition 3.6")
    if (
        not labeled
        and instance_pt
        and class_includes(graph_class_of(query), GraphClass.UNION_DOWNWARD_TREE)
    ):
        return ("polytree-dp", "Propositions 5.4 / 5.5 (+ Lemma 3.7)")
    return ("brute-force-worlds (or karp-luby under precision='approx')", None)


@dataclass(frozen=True)
class QueryExplanation:
    """Everything ``repro parse --explain`` reports about one query.

    ``original_cell`` / ``core_cell`` are the Tables 1–3 verdicts for the
    query as written and for its core against ``instance_class``;
    ``method`` / ``proposition`` preview the dispatch route of the *core*
    (the solver minimizes before classifying).
    """

    ir: QueryIR
    normalized: NormalizedQuery
    instance_class: GraphClass
    setting: Setting
    original_cell: CellResult
    core_cell: CellResult
    method: str
    proposition: Optional[str]

    @property
    def unlocked(self) -> bool:
        """Whether minimization moved the query into a cheaper complexity cell."""
        return (
            self.original_cell.complexity is not self.core_cell.complexity
        )

    def format_core(self) -> str:
        """The minimized query in surface syntax."""
        return format_query(self.normalized.graph)


def explain_query(
    query: Union[str, QueryIR, DiGraph],
    instance_class: GraphClass = GraphClass.ALL,
    setting: Optional[Setting] = None,
) -> QueryExplanation:
    """Parse, minimize and classify a query against an instance class.

    ``setting`` defaults to the query's own alphabet: unlabeled when the
    only label is ``_``, labeled otherwise (a conservative choice — a
    labeled query on an effectively unlabeled instance can only be easier).
    """
    if isinstance(query, QueryIR):
        ir = query
        graph = ir.to_graph()
    elif isinstance(query, str):
        ir = parse_query(query)
        graph = ir.to_graph()
    else:
        graph = query
        ir = ir_from_graph(graph)
    normalized = normalize(graph)
    if setting is None:
        setting = (
            Setting.UNLABELED
            if graph.labels() <= {UNLABELED}
            else Setting.LABELED
        )
    labeled = setting is Setting.LABELED
    original_cell = classify_cell(
        normalized.original_class, instance_class, setting
    )
    core_cell = classify_cell(normalized.core_class, instance_class, setting)
    method, proposition = dispatch_preview(
        normalized.graph, instance_class, labeled
    )
    return QueryExplanation(
        ir=ir,
        normalized=normalized,
        instance_class=instance_class,
        setting=setting,
        original_cell=original_cell,
        core_cell=core_cell,
        method=method,
        proposition=proposition,
    )
