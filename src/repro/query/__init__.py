"""The conjunctive-query language frontend.

A dependency-free textual surface syntax for the queries the library
evaluates — datalog-style atoms with regular-path sugar — plus the
Chandra–Merlin core minimizer and the class-aware ``normalize`` pass that
runs before the solver's classification:

>>> from repro.query import parse_query, format_query, query_core
>>> ir = parse_query("R(x, y), S(y, z), S(t, z)")
>>> format_query(ir)
'R(x, y), S(y, z), S(t, z)'
>>> format_query(query_core(ir.to_graph()))   # the redundant atom folds away
'R(x, y), S(y, z)'

See ``docs/query-language.md`` for the grammar and the minimization
semantics.
"""

from repro.query.ir import Atom, QueryIR, format_query, ir_from_graph, is_identifier
from repro.query.parser import (
    as_query_graph,
    parse_query,
    parse_query_graph,
)
from repro.query.minimize import (
    NormalizedQuery,
    normalize,
    query_core,
    validate_query_graph,
)
from repro.query.explain import QueryExplanation, dispatch_preview, explain_query

#: Alias matching the paper's terminology (the homomorphic *core*).
core = query_core

__all__ = [
    "Atom",
    "QueryIR",
    "format_query",
    "ir_from_graph",
    "is_identifier",
    "as_query_graph",
    "parse_query",
    "parse_query_graph",
    "NormalizedQuery",
    "normalize",
    "query_core",
    "core",
    "validate_query_graph",
    "QueryExplanation",
    "dispatch_preview",
    "explain_query",
]
