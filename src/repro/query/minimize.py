"""Chandra–Merlin core minimization and the class-aware ``normalize`` pass.

Two conjunctive queries are equivalent exactly when they are homomorphically
equivalent (Section 2 of the paper, after Chandra & Merlin 1977), and every
query is equivalent to its *homomorphic core* — the unique (up to
isomorphism) minimal retract onto which the query folds.  Minimization
matters here because the paper's whole complexity classification is driven
by the *shape* of the query graph: a query written with redundant atoms may
sit in a #P-hard cell of Tables 1–3 as written, while its core is a one-way
path that the dispatcher answers in polynomial time.  :func:`normalize`
packages this as a pre-classification pass: validate, minimize, and report
which class the core lands in.

The fold search is exponential in the query size in the worst case (core
computation is NP-hard), which is the right trade-off for conjunctive
queries: they are small, and a successful fold can turn an exponential
*instance-side* computation into a polynomial one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ClassConstraintError
from repro.graphs.classes import GraphClass, graph_class_of, is_one_way_path
from repro.graphs.digraph import DiGraph
from repro.graphs.homomorphism import find_homomorphism


def validate_query_graph(query: DiGraph) -> DiGraph:
    """Reject degenerate query graphs before they reach class recognition.

    A query whose every edge is a self-loop (``R(x, x)`` atoms only) belongs
    to no class of Figure 2 and degenerates the core machinery — its core is
    a single self-loop, which no path/tree recogniser accepts.  Such queries
    are rejected here with a clear :class:`~repro.exceptions.ClassConstraintError`
    instead of failing deep inside class recognition; mixed queries (a
    self-loop atom alongside ordinary atoms) remain valid and are answered
    through the general routes.  Returns the query unchanged when valid.
    """
    edges = query.edges()
    if edges and all(edge.source == edge.target for edge in edges):
        loops = ", ".join(
            f"{edge.label}({edge.source}, {edge.source})" for edge in edges[:3]
        )
        raise ClassConstraintError(
            f"the query consists only of self-loop atoms ({loops}{', ...' if len(edges) > 3 else ''}); "
            f"self-loop-only queries are degenerate — they belong to no class "
            f"of Figure 2 and are rejected at validation"
        )
    return query


def _image_graph(query: DiGraph, mapping) -> DiGraph:
    """The image subgraph of an endomorphism: ``(h(V), h(E))``."""
    image = DiGraph(vertices={mapping[v] for v in query.vertices})
    for edge in query.edges():
        source, target = mapping[edge.source], mapping[edge.target]
        if not image.has_edge(source, target):
            image.add_edge(source, target, edge.label)
    return image


def _fold_once(query: DiGraph) -> Optional[DiGraph]:
    """One fold step: a proper retract of ``query``, or ``None`` if it is a core.

    Tries, for each vertex ``u``, to map the whole query homomorphically
    into the subgraph induced by ``V \\ {u}``; the image of the first such
    homomorphism is an equivalent strictly smaller query.
    """
    if query.num_vertices() <= 1:
        return None
    for u in sorted(query.vertices, key=repr):
        candidate = query.induced_component(v for v in query.vertices if v != u)
        mapping = find_homomorphism(query, candidate)
        if mapping is not None:
            return _image_graph(query, mapping)
    return None


def query_core(query: DiGraph) -> DiGraph:
    """The homomorphic core of a query graph (Chandra–Merlin minimization).

    Repeatedly folds the query onto proper retracts until no vertex can be
    dropped; the result is an equivalent query (``core(Q) ≡ Q`` in the
    homomorphic-equivalence sense of Section 2) of minimum size, with vertex
    names drawn from the original query.  Minimization is idempotent:
    ``query_core(query_core(Q))`` equals ``query_core(Q)``.

    The result is memoised on the query graph (recomputed after mutation);
    when the query already is a core, the *same graph object* is returned,
    so plans and caches keyed on object identity are unaffected.
    """
    return query.cached("query_core", lambda: _compute_core(query))


def _compute_core(query: DiGraph) -> DiGraph:
    # Fast path for the most common serving shape: a one-way path is always
    # its own core — every walk inside a simple directed path is a subpath,
    # so the path cannot map into any proper induced subgraph of itself.
    # This matters operationally: serving workers receive freshly unpickled
    # query objects (no shared memo), and without the shortcut every request
    # would pay the quadratic fold search.
    if is_one_way_path(query):
        return query
    current = query
    while True:
        folded = _fold_once(current)
        if folded is None:
            break
        current = folded
    if current is not query:
        # Fresh core graphs are frozen (their memoised metadata is shared by
        # every cache keyed on them) and pre-seeded as their own core, so
        # ``query_core(query_core(q))`` never re-runs the fold search.
        current.freeze()
        current.cached("query_core", lambda: current)
    return current


@dataclass(frozen=True)
class NormalizedQuery:
    """The result of the class-aware :func:`normalize` pass.

    Attributes
    ----------
    original:
        The query as given (after validation).
    graph:
        The minimized query — the homomorphic core of ``original``.
    original_class / core_class:
        The Figure 2 class of each; minimization can only move a query
        *down* the lattice or keep it in place, never up.
    folded_vertices / folded_edges:
        How much the fold search removed; both zero when the query already
        was a core (then ``graph is original``).
    """

    original: DiGraph
    graph: DiGraph
    original_class: GraphClass
    core_class: GraphClass
    folded_vertices: int
    folded_edges: int

    @property
    def changed(self) -> bool:
        """Whether minimization actually shrank the query."""
        return self.folded_vertices > 0 or self.folded_edges > 0

    def describe(self) -> str:
        """A one-line provenance note, empty when nothing changed."""
        if not self.changed:
            return ""
        return (
            f"query minimized to its homomorphic core: "
            f"folded {self.folded_vertices} variable(s) and "
            f"{self.folded_edges} atom(s); class {self.original_class} -> "
            f"{self.core_class}"
        )


def normalize(query: DiGraph) -> NormalizedQuery:
    """Validate and minimize a query, reporting the class movement.

    This is the pass :class:`~repro.core.solver.PHomSolver` runs before
    classification: redundant atoms are collapsed by the graph
    representation itself, two-way atoms were oriented at parse time, and
    the Chandra–Merlin fold search computes the core — so a query whose
    core is a 1WP/DWT/PT reaches the polynomial dispatch routes even when
    the query *as written* sits in a #P-hard cell.  The verdict is memoised
    on the query graph.
    """
    validate_query_graph(query)
    return query.cached("normalized_query", lambda: _compute_normalized(query))


def _compute_normalized(query: DiGraph) -> NormalizedQuery:
    core = query_core(query)
    return NormalizedQuery(
        original=query,
        graph=core,
        original_class=graph_class_of(query) if query.num_vertices() else GraphClass.ALL,
        core_class=graph_class_of(core),
        folded_vertices=query.num_vertices() - core.num_vertices(),
        folded_edges=query.num_edges() - core.num_edges(),
    )
