"""The query intermediate representation and its pretty-printer.

The textual frontend of :mod:`repro.query` parses a datalog-style atom
syntax into a :class:`QueryIR` — an ordered list of :class:`Atom` facts over
named variables — which then *lowers* to the :class:`~repro.graphs.digraph.DiGraph`
query representation the rest of the library computes on (one labeled edge
per atom, one vertex per variable).

The printer :func:`format_query` goes the other way and round-trips: for any
IR ``q``, ``parse_query(format_query(q))`` is equal to ``q``, and for any
graph ``G`` expressible in the language, the graph lowered from
``parse_query(format_query(G))`` equals ``G``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterable, List, Optional, Tuple, Union

from repro.exceptions import QueryParseError
from repro.graphs.digraph import DiGraph

#: Variable and label tokens of the query language.  The unlabeled edge
#: label ``_`` (:data:`repro.graphs.digraph.UNLABELED`) is itself a valid
#: identifier, so unlabeled atoms are written ``_(x, y)`` (or ``x -> y``).
IDENT_PATTERN = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


def is_identifier(name: object) -> bool:
    """Whether ``name`` is a string the query language can use as a token."""
    return isinstance(name, str) and IDENT_PATTERN.fullmatch(name) is not None


@dataclass(frozen=True)
class Atom:
    """One conjunct ``label(source, target)`` of a conjunctive query.

    ``span`` records the character range of the atom in the source text (for
    parse-time diagnostics) and is excluded from equality, so atoms parsed
    from differently formatted strings still compare equal.
    """

    label: str
    source: str
    target: str
    span: Optional[Tuple[int, int]] = field(default=None, compare=False, repr=False)

    def format(self) -> str:
        """The atom in canonical surface syntax, e.g. ``R(x, y)``."""
        return f"{self.label}({self.source}, {self.target})"


@dataclass(frozen=True)
class QueryIR:
    """A parsed conjunctive query: atoms plus variables without atoms.

    Attributes
    ----------
    atoms:
        The conjuncts, in source order; regular-path sugar and two-way atoms
        are already expanded/oriented into plain forward atoms.
    free_vertices:
        Variables mentioned as lone elements (``..., x``) that appear in no
        atom; they lower to isolated query vertices (which match anywhere).
    text:
        The original source string, when the IR came from the parser
        (excluded from equality).
    """

    atoms: Tuple[Atom, ...]
    free_vertices: Tuple[str, ...] = ()
    text: Optional[str] = field(default=None, compare=False, repr=False)

    def variables(self) -> List[str]:
        """Every variable of the query, in sorted order."""
        seen = set(self.free_vertices)
        for atom in self.atoms:
            seen.add(atom.source)
            seen.add(atom.target)
        return sorted(seen)

    def to_graph(self) -> DiGraph:
        """Lower the IR to the :class:`DiGraph` query representation.

        Duplicate atoms collapse (a conjunct repeated twice is the same
        constraint); two atoms over the same ordered variable pair with
        *different* labels raise :class:`~repro.exceptions.QueryParseError`,
        because the paper's query graphs carry one label per edge — such a
        conjunction can never be satisfied by a single-label instance edge,
        and silently dropping one label would change the query's meaning.
        """
        graph = DiGraph(vertices=self.variables())
        for atom in self.atoms:
            pair = (atom.source, atom.target)
            if graph.has_edge(*pair):
                existing = graph.label_of(*pair)
                if existing == atom.label:
                    continue  # identical conjunct repeated: same constraint
                position = atom.span[0] if atom.span else None
                raise QueryParseError(
                    f"conflicting labels {existing!r} and {atom.label!r} on the "
                    f"atom pair ({atom.source}, {atom.target}); a query edge "
                    f"carries exactly one label",
                    self.text or "",
                    position,
                )
            graph.add_edge(atom.source, atom.target, atom.label)
        return graph

    def format(self) -> str:
        """The query in canonical surface syntax (see :func:`format_query`)."""
        parts = [atom.format() for atom in self.atoms]
        parts.extend(self.free_vertices)
        return ", ".join(parts)


def ir_from_graph(graph: DiGraph) -> QueryIR:
    """Re-express a query graph in the IR (inverse of :meth:`QueryIR.to_graph`).

    Every vertex name must be a valid query-language identifier; otherwise
    the graph cannot be written in the surface syntax and
    :class:`~repro.exceptions.QueryParseError` is raised.
    """
    for vertex in graph.vertices:
        if not is_identifier(vertex):
            raise QueryParseError(
                f"vertex name {vertex!r} cannot be written in the query "
                f"language (identifiers match [A-Za-z_][A-Za-z0-9_]*)"
            )
    atoms = tuple(
        Atom(edge.label, edge.source, edge.target) for edge in graph.edges()
    )
    covered = {v for atom in atoms for v in (atom.source, atom.target)}
    free = tuple(sorted(v for v in graph.vertices if v not in covered))
    return QueryIR(atoms=atoms, free_vertices=free)


def format_query(query: Union[QueryIR, DiGraph]) -> str:
    """Pretty-print a query (IR or graph) in the surface syntax.

    The output round-trips: parsing it reproduces an equal IR, and lowering
    that IR reproduces an equal graph.  Unlabeled edges print as ``_(x, y)``
    atoms.  Example::

        >>> from repro.graphs.builders import one_way_path
        >>> format_query(one_way_path(["R", "S"], prefix="x"))
        'R(x0, x1), S(x1, x2)'
    """
    if isinstance(query, DiGraph):
        return ir_from_graph(query).format()
    return query.format()
