"""The parallel query-serving layer.

This package turns the solving stack into a servable system: a
:class:`~repro.service.service.QueryService` shards registered instances
across a multi-process worker pool (instance affinity keeps each worker's
frozen graphs and compiled-plan caches warm), coalesces duplicate requests
through the canonical query form before dispatch, supports per-request
mixed precision (exact / float / seeded approx), and applies live
single-edge probability updates without recompiling plans.

The layer is fault tolerant: the coordinator supervises its workers
(restarting dead or hung processes and replaying their shard state from a
journal), requests may carry deadlines with graceful degradation through
the ``(ε, δ)`` sampler, and :mod:`repro.service.faults` provides a seeded
fault-injection harness for chaos testing all of it.  With
``QueryService(state_dir=...)`` the coordinator state is durable too: a
write-ahead log and a checksummed plan store (:mod:`repro.persist`) make a
whole-process restart a warm start that recompiles nothing.

See :mod:`repro.service.service` for the architecture notes,
:mod:`repro.service.requests` for the request/result types, and
:mod:`repro.service.jsonl` for the ``repro serve --batch`` wire format.
"""

from repro.service.requests import (
    ServiceRequest,
    ServiceResult,
    request_from_json_dict,
    result_to_json_dict,
)
from repro.service.service import QueryService, ServiceStats
from repro.service.faults import (
    DISK_FAULT_KINDS,
    DiskFaultInjector,
    Fault,
    FaultInjector,
    FaultPlan,
    epsilon_for_budget,
)
from repro.service.jsonl import run_jsonl_session

__all__ = [
    "QueryService",
    "ServiceRequest",
    "ServiceResult",
    "ServiceStats",
    "DISK_FAULT_KINDS",
    "DiskFaultInjector",
    "Fault",
    "FaultInjector",
    "FaultPlan",
    "epsilon_for_budget",
    "request_from_json_dict",
    "result_to_json_dict",
    "run_jsonl_session",
]
