"""Request and result types of the serving layer, plus their JSONL encoding.

A :class:`ServiceRequest` is one question a client asks the service: a query
graph against a registered instance, with per-request method / precision /
sampling options.  A :class:`ServiceResult` is the answer, wrapping the
solver's :class:`~repro.core.solver.PHomResult` with serving provenance
(which worker answered, whether the answer came from the worker's result
cache).

Two requests are *coalescible* when answering one answers the other: same
instance, same canonical query form (:func:`repro.plan.canonical_query_key`,
so isomorphic path queries coalesce), and same method / precision / sampling
contract.  Sampling requests without a pinned seed are never coalesced
across batches or cached — each one is entitled to fresh entropy — but
duplicates *within* one batch share a single estimate, mirroring
:meth:`~repro.core.solver.PHomSolver.solve_many` deduplication.

The module also defines the JSONL wire format used by ``repro serve
--batch``: one JSON object per line, see :func:`request_from_json_dict` and
:func:`result_to_json_dict`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Dict, Hashable, Optional, Tuple, Union

from repro.core.solver import PHomResult, PHomSolver
from repro.exceptions import ServiceError
from repro.graphs.digraph import DiGraph
from repro.graphs.serialization import graph_from_dict
from repro.plan import canonical_query_key
from repro.query.parser import as_query_graph

#: Precision names accepted on a request (``None`` defers to the service).
PRECISIONS = ("exact", "float", "approx")

#: Deadline policies accepted on a request carrying ``deadline_ms``.
DEADLINE_POLICIES = ("error", "degrade", "partial")


@dataclass(frozen=True)
class ServiceRequest:
    """One serving request: a query against a registered instance.

    Attributes
    ----------
    query:
        The conjunctive query, as a directed edge-labeled graph or a
        query-language string (``"R(x, y), S(y, z)"``, see
        :mod:`repro.query`); strings are parsed at construction time, so
        ``request.query`` is always a graph afterwards.
    instance_id:
        The id under which the target instance was registered with
        :meth:`~repro.service.service.QueryService.register_instance`.
    method:
        ``"auto"`` (default) or an explicit solver method name.
    precision:
        ``"exact"`` / ``"float"`` / ``"approx"``, or ``None`` to use the
        service's default precision.
    epsilon / delta / seed:
        The sampling contract, consulted only when sampling runs.  ``None``
        (the default) inherits the service's configured value — including
        the seed, so a service constructed with a pinned seed answers
        unseeded requests reproducibly.  A pinned effective seed makes the
        estimate reproducible (and therefore cacheable); an effective seed
        of ``None`` draws fresh entropy per estimate.
    request_id:
        Optional caller-supplied correlation id, echoed on the result.
    deadline_ms:
        Optional latency budget in milliseconds.  ``None`` (the default)
        means the request waits as long as the service-level ``timeout``
        allows.  A finite deadline is enforced by the coordinator without
        blocking unrelated requests that share the worker.
    on_deadline:
        What a missed deadline means — ``"error"`` (default) raises
        :class:`~repro.exceptions.DeadlineExceededError`; ``"degrade"``
        re-answers through the approximate route with an epsilon chosen
        from the budget (:func:`~repro.service.faults.epsilon_for_budget`),
        recording ``degraded=True`` and the original method in the result
        notes; ``"partial"`` (for ``submit_many``) returns a typed timeout
        result (``timed_out=True``, ``result=None``) without raising.
    """

    query: DiGraph
    instance_id: str
    method: str = "auto"
    precision: Optional[str] = None
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    seed: Optional[int] = None
    request_id: Optional[str] = None
    deadline_ms: Optional[float] = None
    on_deadline: str = "error"

    def __post_init__(self) -> None:
        if isinstance(self.query, str):
            # Frozen dataclass: parse the query-language string in place so
            # every consumer (coalescing, sharding, the workers) sees a graph.
            object.__setattr__(self, "query", as_query_graph(self.query))
        if self.precision is not None and self.precision not in PRECISIONS:
            raise ServiceError(
                f"unknown precision {self.precision!r}; expected one of {PRECISIONS}"
            )
        if self.on_deadline not in DEADLINE_POLICIES:
            raise ServiceError(
                f"unknown deadline policy {self.on_deadline!r}; expected one "
                f"of {DEADLINE_POLICIES}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise ServiceError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )

    def resolved_precision(self, default: str) -> str:
        """The effective precision once the service default is applied."""
        return self.precision if self.precision is not None else default

    def may_sample(self, default_precision: str) -> bool:
        """Whether this request can be answered by a sampler."""
        return (
            self.resolved_precision(default_precision) == "approx"
            or self.method in PHomSolver.SAMPLING_METHODS
        )

    def coalesce_key(self, default_precision: str) -> Tuple[Hashable, ...]:
        """The dedupe key: requests with equal keys share one computation.

        The key folds in everything that affects the answer — instance,
        canonical query form, method, resolved precision, and (for requests
        that may sample) the full ``(ε, δ, seed)`` contract.  Only ``auto``
        requests key on the minimized core (the auto route is the one that
        minimizes); explicit methods dispatch on the query exactly as
        written, so their keys stay spelling-sensitive — a redundant
        spelling must not inherit another spelling's result or error.
        """
        precision = self.resolved_precision(default_precision)
        key: Tuple[Hashable, ...] = (
            self.instance_id,
            canonical_query_key(self.query, minimize=self.method == "auto"),
            self.method,
            precision,
        )
        if self.may_sample(default_precision):
            key += (self.epsilon, self.delta, self.seed)
        if self.deadline_ms is not None:
            # Deadline-carrying requests dispatch individually (so they can
            # be abandoned per request) and their answer depends on the
            # policy; never merge them with unconstrained duplicates or with
            # requests under a different budget.
            key += (self.deadline_ms, self.on_deadline)
        return key

    def cacheable(self, default_precision: str) -> bool:
        """Whether the answer may be served from a worker's result cache.

        Exact and float answers are pure functions of the (live) instance
        table and always cacheable; sampled answers are cacheable only under
        a pinned seed, where the estimate is reproducible by contract.
        """
        if not self.may_sample(default_precision):
            return True
        return self.seed is not None


@dataclass(frozen=True)
class ServiceResult:
    """One serving answer: the solver result plus serving provenance.

    ``result`` is ``None`` (and ``error`` holds the message) only for failed
    requests surfaced by ``submit_many(..., on_error="return")`` and for
    deadline timeouts under the ``"partial"`` policy (``timed_out=True``);
    the default raising mode never hands out error results.

    ``attempts`` counts dispatches including supervision retries (1 for a
    first-try answer); ``degraded`` marks answers re-routed through the
    approximate tier after a missed deadline; ``stolen`` marks answers
    computed on a worker other than the instance's owner (the coordinator's
    work-stealing tier — same answer by contract, different shard);
    ``error_class`` names the exception type behind ``error`` so callers
    can branch without string matching (see :attr:`retryable`).

    ``duration_ms`` is the worker-side wall time of the answering solve
    (``None`` for failures and for answers computed before the worker
    measured, e.g. coordinator-degraded results).  ``timing`` is the
    per-phase breakdown — span name to total milliseconds, e.g.
    ``{"plan.compile": 1.2, "tape.run": 0.3}`` — and is only populated
    when the request ran under an active trace (see :mod:`repro.obs`).
    """

    result: Optional[PHomResult]
    request_id: Optional[str] = None
    worker: int = 0
    cached: bool = False
    coalesced: bool = False
    stolen: bool = False
    error: Optional[str] = None
    error_class: Optional[str] = None
    attempts: int = 1
    degraded: bool = False
    timed_out: bool = False
    duration_ms: Optional[float] = None
    timing: Optional[Dict[str, float]] = None

    @property
    def retryable(self) -> bool:
        """Whether resubmitting the same request could plausibly succeed.

        True for transient serving failures (retry exhaustion, missed
        deadlines); false for deterministic request errors (unknown
        instance, malformed query) and for successful answers.
        """
        return self.error_class in ("ServiceUnavailableError", "DeadlineExceededError")

    @property
    def probability(self):
        """The probability (``Fraction`` in exact mode, ``float`` otherwise)."""
        return self._solved().probability

    @property
    def method(self) -> str:
        """The algorithm that answered the request."""
        return self._solved().method

    @property
    def notes(self) -> str:
        """Provenance notes (sampling contract, fallback markers)."""
        return self._solved().notes

    def _solved(self) -> PHomResult:
        if self.result is None:
            raise ServiceError(f"request {self.request_id!r} failed: {self.error}")
        return self.result

    def __float__(self) -> float:
        return float(self.probability)


# ----------------------------------------------------------------------
# JSONL wire format (repro serve --batch)
# ----------------------------------------------------------------------
def _query_from_payload(payload: Any) -> Union[DiGraph, str]:
    """Interpret the ``query`` field of a ``solve`` line.

    Accepted forms are a JSON graph object (the dictionary format of
    :mod:`repro.graphs.serialization`) or a query-language string
    (``"R(x, y), S(y, z)"``).  Anything else — including a *string that
    itself looks like JSON*, where the caller's intent is ambiguous between
    "a serialized graph someone forgot to decode" and "query-language text"
    — is rejected with a typed :class:`~repro.exceptions.ServiceError`,
    which the JSONL session surfaces as an ``{"error": ...}`` line.
    """
    if isinstance(payload, dict):
        return graph_from_dict(payload)
    if isinstance(payload, str):
        if payload.lstrip().startswith(("{", "[")):
            raise ServiceError(
                "ambiguous query payload: the string starts with "
                f"{payload.lstrip()[0]!r}, which looks like an encoded JSON "
                "graph; pass the graph as a JSON object, or a query-language "
                "string such as 'R(x, y), S(y, z)'"
            )
        return payload  # parsed by ServiceRequest.__post_init__
    raise ServiceError(
        f"query payload must be a JSON graph object or a query-language "
        f"string, got {type(payload).__name__}"
    )


def request_from_json_dict(data: Dict[str, Any]) -> ServiceRequest:
    """Build a :class:`ServiceRequest` from one parsed ``solve`` JSONL line.

    Expected shape::

        {"op": "solve", "id": "r1", "instance": "inst1",
         "query": {"vertices": [...], "edges": [[s, t, label], ...]},
         "method": "auto", "precision": "float",
         "epsilon": 0.05, "delta": 0.01, "seed": 42,
         "deadline_ms": 250, "on_deadline": "degrade"}

    ``id``, ``method``, ``precision``, ``epsilon``, ``delta``, ``seed``,
    ``deadline_ms`` and ``on_deadline``
    are optional; ``instance`` names a previously registered instance and
    ``query`` is either a graph dictionary in the format of
    :mod:`repro.graphs.serialization` or a query-language string
    (``"query": "R(x, y), S(y, z)"``); see :func:`_query_from_payload` for
    the ambiguity rules.
    """
    if "instance" not in data:
        raise ServiceError("solve request must name an 'instance' id")
    if "query" not in data:
        raise ServiceError("solve request must carry a 'query' graph or string")
    seed = data.get("seed")
    epsilon = data.get("epsilon")
    delta = data.get("delta")
    deadline_ms = data.get("deadline_ms")
    return ServiceRequest(
        query=_query_from_payload(data["query"]),
        instance_id=str(data["instance"]),
        method=str(data.get("method", "auto")),
        precision=data.get("precision"),
        epsilon=float(epsilon) if epsilon is not None else None,
        delta=float(delta) if delta is not None else None,
        seed=int(seed) if seed is not None else None,
        request_id=str(data["id"]) if "id" in data else None,
        deadline_ms=float(deadline_ms) if deadline_ms is not None else None,
        on_deadline=str(data.get("on_deadline", "error")),
    )


def result_to_json_dict(outcome: ServiceResult) -> Dict[str, Any]:
    """Encode a :class:`ServiceResult` as one JSONL output object.

    Exact probabilities are carried as fraction strings (lossless) and every
    result also reports the ``float`` value for convenience.
    """
    result = outcome.result
    probability = result.probability
    encoded = (
        str(probability) if isinstance(probability, Fraction) else float(probability)
    )
    payload: Dict[str, Any] = {
        "id": outcome.request_id,
        "probability": encoded,
        "float": float(probability),
        "method": result.method,
        "proposition": result.proposition,
        "query_class": str(result.query_class),
        "instance_class": str(result.instance_class),
        "worker": outcome.worker,
        "cached": outcome.cached,
        "coalesced": outcome.coalesced,
    }
    if outcome.duration_ms is not None:
        payload["duration_ms"] = outcome.duration_ms
    if outcome.timing:
        payload["timing"] = outcome.timing
    if outcome.attempts > 1:
        payload["attempts"] = outcome.attempts
    if outcome.degraded:
        payload["degraded"] = True
    if outcome.stolen:
        payload["stolen"] = True
    if result.notes:
        payload["notes"] = result.notes
    return payload
