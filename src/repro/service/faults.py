"""Fault injection for the serving layer: :class:`FaultPlan`.

The supervision, retry and degradation machinery of
:class:`~repro.service.QueryService` only earns trust when it can be
exercised deterministically.  This module provides that harness: a seeded,
picklable :class:`FaultPlan` describes *when* and *how* workers misbehave,
workers honour it in test and benchmark builds (the plan ships to every
worker incarnation at spawn time), and pinned seeds make every chaos run
reproducible.

Fault kinds
-----------

``kill``
    The worker process exits hard (``os._exit``) *before* handling the
    triggering message — the message is lost, exactly like a segfault or an
    OOM kill.  The coordinator detects the dead process, restarts it,
    replays the shard journal and retries the lost requests.
``delay``
    The worker sleeps ``seconds`` before handling the message — a stand-in
    for a slow computation or a stalled host.  Used to trigger deadline
    policies and (past the service ``timeout``) unresponsiveness recovery.
``drop``
    The worker handles the message but never replies — a lost response.
    The coordinator's per-attempt timeout declares the worker unresponsive,
    restarts it and retries.
``solver-error``
    One request of the next solve batch fails with an injected exception —
    a deterministic stand-in for a bug in a solver route.  Surfaces as a
    per-request error (never retried: the failure is not transient).
``corrupt``
    The reply to the triggering message is replaced by garbage bytes drawn
    from the plan's seeded RNG — a corrupted pickle / protocol frame.  The
    coordinator rejects the malformed reply, restarts the worker and
    retries.

``kill``, ``drop`` and ``corrupt`` are process-level faults and are ignored
by the inline (``num_workers=0``) service; ``delay`` and ``solver-error``
fire in both deployment shapes.

Triggering is message-based, not time-based, so plans are reproducible:
``after_messages=K`` fires on the ``K+1``-th protocol message (register /
update / solve / stats all count) handled by the targeted worker.  A fault
fires once per arming; ``repeat=True`` re-arms it for every respawned
incarnation of the worker, which is how retry exhaustion is simulated.

Disk fault kinds
----------------

The durable-state layer (:mod:`repro.persist`) is exercised by a second
family of fault kinds, threaded through the persistence *write path* by a
:class:`DiskFaultInjector` (built from the same :class:`FaultPlan`; for
disk faults ``after_messages`` counts persistence writes, and ``worker``
is ignored — the write-ahead log is coordinator-side):

``torn-write``
    Only a prefix of the written bytes reaches the file — a crash midway
    through an append.  Recovery must detect the torn frame via its
    checksum / framing and truncate the tail.
``truncate-tail``
    The file loses a seeded number of bytes off its end *after* the write
    — a filesystem rolling back data that was never fsynced.  Same
    recovery contract as ``torn-write``.
``bit-flip``
    One seeded bit of the written bytes is inverted — silent media
    corruption.  Recovery must detect the CRC mismatch and quarantine the
    damaged frame or store entry instead of replaying garbage.
``enospc``
    The write fails with ``OSError(ENOSPC)`` — disk full.  The persistence
    layer must surface the error as a counted degradation (serving
    continues without durability) rather than crash.
"""

from __future__ import annotations

import errno
import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import ServiceError

#: Disk fault kinds, honoured by the persistence write path only.
DISK_FAULT_KINDS = ("torn-write", "truncate-tail", "bit-flip", "enospc")

#: The recognised fault kinds.
FAULT_KINDS = ("kill", "delay", "drop", "solver-error", "corrupt") + DISK_FAULT_KINDS

#: Fault kinds honoured by the inline (``num_workers=0``) service.
INLINE_FAULT_KINDS = ("delay", "solver-error")


@dataclass(frozen=True)
class Fault:
    """One injected fault: what goes wrong, on which worker, and when.

    ``worker`` is the targeted worker index (``None`` targets every
    worker); ``after_messages`` is the number of protocol messages the
    worker handles before the fault fires; ``seconds`` is the sleep length
    for ``kind="delay"``; ``repeat`` re-arms the fault on every respawned
    incarnation of the worker instead of only the first.
    """

    kind: str
    worker: Optional[int] = None
    after_messages: int = 0
    seconds: float = 0.0
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ServiceError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after_messages < 0:
            raise ServiceError(
                f"after_messages must be >= 0, got {self.after_messages}"
            )
        if self.seconds < 0:
            raise ServiceError(f"a delay cannot be negative, got {self.seconds}")
        if self.kind == "delay" and self.seconds == 0.0:
            raise ServiceError("a 'delay' fault needs seconds > 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable chaos schedule honoured by service workers.

    The plan is immutable and ships to every worker (and every respawned
    incarnation) at spawn time; each worker derives its own
    :class:`FaultInjector` with :meth:`for_worker`.  ``seed`` drives any
    randomized fault payloads (the ``corrupt`` garbage bytes), so two runs
    with the same plan misbehave identically.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable of faults but store a hashable tuple.
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_worker(self, worker_index: int, incarnation: int = 0) -> "FaultInjector":
        """The injector for one worker incarnation (deterministic per plan)."""
        return FaultInjector(self, worker_index, incarnation)

    def targets(self, worker_index: int, incarnation: int = 0) -> Tuple[Fault, ...]:
        """The faults armed for one worker incarnation."""
        return tuple(
            fault
            for fault in self.faults
            if (fault.worker is None or fault.worker == worker_index)
            and (fault.repeat or incarnation == 0)
        )


class FaultInjector:
    """Worker-side fault state: counts messages, fires armed faults.

    Created from a :class:`FaultPlan` via :meth:`FaultPlan.for_worker`;
    the worker loop calls :meth:`on_message` once per protocol message and
    applies the returned process-level faults (kill / delay / drop /
    corrupt), while ``solver-error`` faults are consumed per request inside
    the solve batch via :meth:`take_solver_error`.
    """

    def __init__(self, plan: FaultPlan, worker_index: int, incarnation: int = 0):
        self.worker_index = worker_index
        self.incarnation = incarnation
        self.handled = 0
        # Disk faults target the persistence write path (DiskFaultInjector),
        # never the message loop; arming them here would silently eat them.
        self._armed: List[Fault] = [
            fault
            for fault in plan.targets(worker_index, incarnation)
            if fault.kind not in DISK_FAULT_KINDS
        ]
        self._solver_errors = 0
        # Deterministic per (plan seed, worker, incarnation): integer tuple
        # hashes do not depend on PYTHONHASHSEED, so corrupt payloads are
        # reproducible across processes.
        self._rng = random.Random(hash((plan.seed, worker_index, incarnation)))

    def on_message(self) -> List[Fault]:
        """Advance the message counter; return the faults firing now.

        ``solver-error`` faults are not returned — they are armed
        internally and consumed per request by :meth:`take_solver_error`.
        """
        self.handled += 1
        firing = [f for f in self._armed if f.after_messages < self.handled]
        for fault in firing:
            self._armed.remove(fault)
        actions: List[Fault] = []
        for fault in firing:
            if fault.kind == "solver-error":
                self._solver_errors += 1
            else:
                actions.append(fault)
        return actions

    def take_solver_error(self) -> bool:
        """Consume one pending injected solver exception, if any."""
        if self._solver_errors > 0:
            self._solver_errors -= 1
            return True
        return False

    def corrupt_bytes(self, length: int = 24) -> bytes:
        """Seeded garbage standing in for a corrupted reply frame."""
        return bytes(self._rng.randrange(256) for _ in range(length))


class DiskFaultInjector:
    """Seeded disk misbehaviour for the persistence write path.

    Built from the same :class:`FaultPlan` as the worker-side injectors but
    arming only the :data:`DISK_FAULT_KINDS`; for disk faults
    ``after_messages`` counts persistence *writes* (write-ahead-log appends
    and plan-store entry writes share one counter) and ``worker`` is
    ignored.  The injector is picklable, so a plan-store copy shipped to a
    worker process carries its own deterministic instance.

    The write path calls :meth:`mutate_write` with the exact bytes it is
    about to write; the injector returns them unchanged, returns a damaged
    variant (``torn-write`` prefix, ``bit-flip``), or raises
    ``OSError(ENOSPC)`` (``enospc``).  After a successful write the caller
    asks :meth:`take_tail_truncation` how many bytes to chop off the file's
    end (``truncate-tail``); the seeded RNG keeps every payload
    reproducible run to run.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self.writes = 0
        #: Kinds that actually fired, in firing order (for assertions).
        self.fired: List[str] = []
        self._armed: List[Fault] = [
            fault for fault in plan.faults if fault.kind in DISK_FAULT_KINDS
        ]
        self._pending_truncation = 0
        self._rng = random.Random(hash((plan.seed, "disk")))

    def _take_firing(self) -> List[Fault]:
        firing = [f for f in self._armed if f.after_messages < self.writes]
        for fault in firing:
            self._armed.remove(fault)
            self.fired.append(fault.kind)
        return firing

    def mutate_write(self, data: bytes) -> bytes:
        """Advance the write counter; return the bytes that reach the disk.

        Raises ``OSError(ENOSPC)`` when an ``enospc`` fault fires; for
        ``torn-write`` returns a strict seeded prefix, for ``bit-flip``
        returns the data with one seeded bit inverted.  A firing
        ``truncate-tail`` fault is deferred to :meth:`take_tail_truncation`.
        """
        self.writes += 1
        for fault in self._take_firing():
            if fault.kind == "enospc":
                raise OSError(
                    errno.ENOSPC, "injected disk-full fault (FaultPlan 'enospc')"
                )
            if fault.kind == "torn-write" and len(data) > 1:
                data = data[: self._rng.randrange(1, len(data))]
            elif fault.kind == "bit-flip" and data:
                position = self._rng.randrange(len(data))
                mutated = bytearray(data)
                mutated[position] ^= 1 << self._rng.randrange(8)
                data = bytes(mutated)
            elif fault.kind == "truncate-tail":
                self._pending_truncation = self._rng.randrange(1, 16)
        return data

    def take_tail_truncation(self) -> int:
        """Bytes to chop off the end of the file after the last write (0 = none)."""
        pending = self._pending_truncation
        self._pending_truncation = 0
        return pending


def epsilon_for_budget(budget_ms: Optional[float], floor: float = 0.05) -> float:
    """Pick a Karp–Luby ``epsilon`` from a latency budget in milliseconds.

    The graceful-degradation tier answers a deadline-missed request with an
    ``(ε, δ)`` estimate instead of an error; the smaller the budget, the
    looser the guarantee it promises (fewer samples fit).  The ladder is a
    deterministic function of the budget — not of measured time — so a
    degraded answer's contract is reproducible:

    >>> epsilon_for_budget(10)
    0.5
    >>> epsilon_for_budget(100)
    0.25
    >>> epsilon_for_budget(500)
    0.1
    >>> epsilon_for_budget(5000)
    0.05
    >>> epsilon_for_budget(5000, floor=0.2)  # never tighter than the request
    0.2
    """
    if budget_ms is None:
        return floor
    for threshold, epsilon in ((50.0, 0.5), (250.0, 0.25), (1000.0, 0.1)):
        if budget_ms < threshold:
            return max(epsilon, floor)
    return floor
