"""Fault injection for the serving layer: :class:`FaultPlan`.

The supervision, retry and degradation machinery of
:class:`~repro.service.QueryService` only earns trust when it can be
exercised deterministically.  This module provides that harness: a seeded,
picklable :class:`FaultPlan` describes *when* and *how* workers misbehave,
workers honour it in test and benchmark builds (the plan ships to every
worker incarnation at spawn time), and pinned seeds make every chaos run
reproducible.

Fault kinds
-----------

``kill``
    The worker process exits hard (``os._exit``) *before* handling the
    triggering message — the message is lost, exactly like a segfault or an
    OOM kill.  The coordinator detects the dead process, restarts it,
    replays the shard journal and retries the lost requests.
``delay``
    The worker sleeps ``seconds`` before handling the message — a stand-in
    for a slow computation or a stalled host.  Used to trigger deadline
    policies and (past the service ``timeout``) unresponsiveness recovery.
``drop``
    The worker handles the message but never replies — a lost response.
    The coordinator's per-attempt timeout declares the worker unresponsive,
    restarts it and retries.
``solver-error``
    One request of the next solve batch fails with an injected exception —
    a deterministic stand-in for a bug in a solver route.  Surfaces as a
    per-request error (never retried: the failure is not transient).
``corrupt``
    The reply to the triggering message is replaced by garbage bytes drawn
    from the plan's seeded RNG — a corrupted pickle / protocol frame.  The
    coordinator rejects the malformed reply, restarts the worker and
    retries.

``kill``, ``drop`` and ``corrupt`` are process-level faults and are ignored
by the inline (``num_workers=0``) service; ``delay`` and ``solver-error``
fire in both deployment shapes.

Triggering is message-based, not time-based, so plans are reproducible:
``after_messages=K`` fires on the ``K+1``-th protocol message (register /
update / solve / stats all count) handled by the targeted worker.  A fault
fires once per arming; ``repeat=True`` re-arms it for every respawned
incarnation of the worker, which is how retry exhaustion is simulated.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.exceptions import ServiceError

#: The recognised fault kinds.
FAULT_KINDS = ("kill", "delay", "drop", "solver-error", "corrupt")

#: Fault kinds honoured by the inline (``num_workers=0``) service.
INLINE_FAULT_KINDS = ("delay", "solver-error")


@dataclass(frozen=True)
class Fault:
    """One injected fault: what goes wrong, on which worker, and when.

    ``worker`` is the targeted worker index (``None`` targets every
    worker); ``after_messages`` is the number of protocol messages the
    worker handles before the fault fires; ``seconds`` is the sleep length
    for ``kind="delay"``; ``repeat`` re-arms the fault on every respawned
    incarnation of the worker instead of only the first.
    """

    kind: str
    worker: Optional[int] = None
    after_messages: int = 0
    seconds: float = 0.0
    repeat: bool = False

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ServiceError(
                f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )
        if self.after_messages < 0:
            raise ServiceError(
                f"after_messages must be >= 0, got {self.after_messages}"
            )
        if self.seconds < 0:
            raise ServiceError(f"a delay cannot be negative, got {self.seconds}")
        if self.kind == "delay" and self.seconds == 0.0:
            raise ServiceError("a 'delay' fault needs seconds > 0")


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, picklable chaos schedule honoured by service workers.

    The plan is immutable and ships to every worker (and every respawned
    incarnation) at spawn time; each worker derives its own
    :class:`FaultInjector` with :meth:`for_worker`.  ``seed`` drives any
    randomized fault payloads (the ``corrupt`` garbage bytes), so two runs
    with the same plan misbehave identically.
    """

    faults: Tuple[Fault, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        # Accept any iterable of faults but store a hashable tuple.
        object.__setattr__(self, "faults", tuple(self.faults))

    def for_worker(self, worker_index: int, incarnation: int = 0) -> "FaultInjector":
        """The injector for one worker incarnation (deterministic per plan)."""
        return FaultInjector(self, worker_index, incarnation)

    def targets(self, worker_index: int, incarnation: int = 0) -> Tuple[Fault, ...]:
        """The faults armed for one worker incarnation."""
        return tuple(
            fault
            for fault in self.faults
            if (fault.worker is None or fault.worker == worker_index)
            and (fault.repeat or incarnation == 0)
        )


class FaultInjector:
    """Worker-side fault state: counts messages, fires armed faults.

    Created from a :class:`FaultPlan` via :meth:`FaultPlan.for_worker`;
    the worker loop calls :meth:`on_message` once per protocol message and
    applies the returned process-level faults (kill / delay / drop /
    corrupt), while ``solver-error`` faults are consumed per request inside
    the solve batch via :meth:`take_solver_error`.
    """

    def __init__(self, plan: FaultPlan, worker_index: int, incarnation: int = 0):
        self.worker_index = worker_index
        self.incarnation = incarnation
        self.handled = 0
        self._armed: List[Fault] = list(plan.targets(worker_index, incarnation))
        self._solver_errors = 0
        # Deterministic per (plan seed, worker, incarnation): integer tuple
        # hashes do not depend on PYTHONHASHSEED, so corrupt payloads are
        # reproducible across processes.
        self._rng = random.Random(hash((plan.seed, worker_index, incarnation)))

    def on_message(self) -> List[Fault]:
        """Advance the message counter; return the faults firing now.

        ``solver-error`` faults are not returned — they are armed
        internally and consumed per request by :meth:`take_solver_error`.
        """
        self.handled += 1
        firing = [f for f in self._armed if f.after_messages < self.handled]
        for fault in firing:
            self._armed.remove(fault)
        actions: List[Fault] = []
        for fault in firing:
            if fault.kind == "solver-error":
                self._solver_errors += 1
            else:
                actions.append(fault)
        return actions

    def take_solver_error(self) -> bool:
        """Consume one pending injected solver exception, if any."""
        if self._solver_errors > 0:
            self._solver_errors -= 1
            return True
        return False

    def corrupt_bytes(self, length: int = 24) -> bytes:
        """Seeded garbage standing in for a corrupted reply frame."""
        return bytes(self._rng.randrange(256) for _ in range(length))


def epsilon_for_budget(budget_ms: Optional[float], floor: float = 0.05) -> float:
    """Pick a Karp–Luby ``epsilon`` from a latency budget in milliseconds.

    The graceful-degradation tier answers a deadline-missed request with an
    ``(ε, δ)`` estimate instead of an error; the smaller the budget, the
    looser the guarantee it promises (fewer samples fit).  The ladder is a
    deterministic function of the budget — not of measured time — so a
    degraded answer's contract is reproducible:

    >>> epsilon_for_budget(10)
    0.5
    >>> epsilon_for_budget(100)
    0.25
    >>> epsilon_for_budget(500)
    0.1
    >>> epsilon_for_budget(5000)
    0.05
    >>> epsilon_for_budget(5000, floor=0.2)  # never tighter than the request
    0.2
    """
    if budget_ms is None:
        return floor
    for threshold, epsilon in ((50.0, 0.5), (250.0, 0.25), (1000.0, 0.1)):
        if budget_ms < threshold:
            return max(epsilon, floor)
    return floor
