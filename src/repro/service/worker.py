"""Worker-side execution of the serving layer.

A :class:`WorkerState` owns everything one shard of the service needs to
answer requests fast:

* the registered instances of its shard (shipped once, kept warm — the
  frozen instance graph accumulates memoised metadata, and the solver's
  :class:`~repro.plan.PlanCache` accumulates compiled plans);
* one :class:`~repro.core.solver.PHomSolver` configured like the service;
* a small LRU *result cache* keyed on the request coalesce key, so repeated
  identical requests across batches skip even the arithmetic (invalidated
  per instance on ``update_probability``).

The same class backs both deployment shapes: :func:`worker_loop` drives it
from a child process (requests arrive on a queue, replies leave on a pipe
this worker alone writes — no cross-worker locks, so a crashed or
terminated worker can never wedge its siblings' replies), and the service's
inline mode (``num_workers=0``) calls it directly in-process.  Messages are
``(op_id, op, payload)`` tuples; every message gets exactly one reply
``(worker_index, op_id, reply)`` where ``reply`` is ``("ok", value)`` or
``("error", message)``.
"""

from __future__ import annotations

import os
import pickle
import re
import time
import warnings
from collections import OrderedDict
from dataclasses import replace
from typing import Any, Dict, Hashable, List, Optional, Tuple

from repro.approx import ApproxParams
from repro.core.solver import PHomResult, PHomSolver, requalify_result
from repro.exceptions import ServiceError
from repro.obs.metrics import MetricsRegistry, counter_total
from repro.obs.trace import Tracer, current_tracer, set_tracer
from repro.probability.prob_graph import ProbabilisticGraph
from repro.service.faults import FaultInjector, FaultPlan
from repro.service.requests import ServiceRequest

#: Exit code of a worker killed by an injected ``kill`` fault (distinct from
#: normal termination and from the supervisor's ``terminate()``).
FAULT_KILL_EXIT_CODE = 17

#: The dichotomy routes of the latency histogram: which tier of the paper's
#: complexity map answered a request (plus the batched-tape fast path).
ROUTES = ("exact-dp", "ddnnf", "karp-luby", "tape-batch")

#: Sample counts ride back inside ``ApproxEstimate.describe()`` notes
#: ("karp-luby: 1234 samples, ε=0.05, ...") — parsed, not re-plumbed.
_SAMPLES_RE = re.compile(r"(\d+) samples")


def route_for_method(method: str) -> str:
    """Map a solver method name onto its dichotomy route.

    Sampling methods (the #P-hard tier) report as ``"karp-luby"``, d-DNNF
    style compilation (the polytree automaton) as ``"ddnnf"``, and every
    exact dynamic-programming / enumeration method as ``"exact-dp"``.
    """
    if method in PHomSolver.SAMPLING_METHODS:
        return "karp-luby"
    if method == "polytree-automaton":
        return "ddnnf"
    return "exact-dp"


class WorkerState:
    """The per-shard serving state (instances, solver, result cache)."""

    def __init__(
        self,
        worker_index: int,
        solver: PHomSolver,
        default_precision: str,
        result_cache_size: int = 1024,
        fault_injector: Optional[FaultInjector] = None,
    ) -> None:
        self.worker_index = worker_index
        self.solver = solver
        self.default_precision = default_precision
        self.result_cache_size = result_cache_size
        self.fault_injector = fault_injector
        self.instances: Dict[str, ProbabilisticGraph] = {}
        self._result_cache: "OrderedDict[Hashable, PHomResult]" = OrderedDict()
        # The telemetry registry is the single source for the serving
        # counters: stats() derives its numbers from a snapshot, so the
        # stats view and the metrics view cannot disagree.
        self.metrics = MetricsRegistry()
        self._counters = {
            name: self.metrics.counter(
                f"repro_worker_{name}_total",
                help,
            )
            for name, help in (
                ("requests", "Requests handled by this worker (per shard)."),
                ("solved", "Requests answered by running the solver."),
                ("result_cache_hits", "Requests answered from the result cache."),
                ("updates", "Probability updates applied to this shard."),
                ("batch_evals", "evaluate_many batches run on this shard."),
            )
        }
        self._latency = self.metrics.histogram(
            "repro_request_duration_ms",
            "Per-request wall time on this worker, by dichotomy route.",
            labelnames=("route",),
        )
        self._sampler_samples = self.metrics.counter(
            "repro_sampler_samples_total",
            "Karp-Luby samples drawn by this worker's samplers.",
        )
        if self.solver.plan_cache is not None:
            # Eviction hook: evicted structure is re-compilable, but knowing
            # how often it happens tells the operator the cache is undersized.
            self.solver.plan_cache.on_evict = self._on_plan_evict
        self._plans_evicted_by_instance: Dict[str, int] = {}

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def register(
        self,
        instance_id: str,
        instance: Any,
        updates: Tuple = (),
    ) -> int:
        """Install (or replace) an instance; returns its edge count.

        ``instance`` is a :class:`ProbabilisticGraph` or its pickled bytes
        (the coordinator ships its journal snapshot verbatim — serialized
        once, unpickled here — for registrations, restart replays and
        stolen-shard replicas alike); ``updates`` is the journal's folded
        ``(endpoints, probability)`` tail, applied on top of the snapshot.
        """
        if isinstance(instance, (bytes, bytearray)):
            instance = pickle.loads(instance)
        for endpoints, probability in updates:
            instance.set_probability(endpoints, probability)
        self.instances[instance_id] = instance
        self._invalidate_results(instance_id)
        return instance.graph.num_edges()

    def update(self, instance_id: str, endpoints: Tuple, probability) -> None:
        """Apply one probability update and drop the instance's cached results."""
        instance = self._instance(instance_id)
        instance.set_probability(endpoints, probability)
        self._counters["updates"].inc()
        self._invalidate_results(instance_id)

    def warm(self, instance_id: str) -> int:
        """Pre-load the instance's stored plans into the plan cache.

        Only meaningful when the solver carries a persistent plan tier
        (:class:`~repro.persist.PersistentPlanCache`); without one, warming
        is a no-op returning 0.  Returns the number of plans loaded from
        disk (loaded — not compiled: warm restarts must recompile nothing).
        """
        instance = self._instance(instance_id)
        cache = self.solver.plan_cache
        if cache is None or not hasattr(cache, "warm"):
            return 0
        return cache.warm(instance)

    def evaluate_many(
        self,
        instance_id: str,
        query: Any,
        batches: List,
        precision: Optional[str] = None,
        backend: str = "auto",
    ) -> List:
        """Answer many probability valuations of one query in one pass.

        Compiles (or reuses) the query's plan and its flat tape through the
        shard solver, then runs the batched tape evaluator — the serving
        fast path for "same plan, many drifted probability tables".
        ``batches`` entries are override mappings keyed by edge endpoints
        (``None``/``{}`` for the live table).  ``precision`` defaults to the
        service's default precision; sampling ("approx") has no batched
        tape, so it is rejected by the solver.
        """
        instance = self._instance(instance_id)
        if precision is None:
            precision = self.default_precision
        self._counters["batch_evals"].inc()
        start = time.perf_counter()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            values = self.solver.evaluate_many(
                query, instance, batches, precision=precision, backend=backend
            )
        self._latency.labels("tape-batch").observe(
            (time.perf_counter() - start) * 1000.0
        )
        return values

    def solve_batch(
        self, requests: List[ServiceRequest]
    ) -> List[Tuple[str, Any]]:
        """Answer a batch of (already coalesced) requests.

        Returns one outcome per request, in order:
        ``("ok", result, cached, duration_ms, timing)`` or
        ``("error", message)`` — a failing request never poisons the rest
        of the batch.  ``duration_ms`` is always measured; ``timing`` is
        the per-phase span breakdown (``None`` unless the request ran
        under an active trace).
        """
        outcomes: List[Tuple[str, Any]] = []
        tracer = current_tracer()
        for request in requests:
            self._counters["requests"].inc()
            start = time.perf_counter()
            mark = tracer.mark()
            try:
                if self.fault_injector is not None and (
                    self.fault_injector.take_solver_error()
                ):
                    raise ServiceError(
                        "injected solver fault (FaultPlan 'solver-error')"
                    )
                with tracer.span("worker.solve") as span:
                    result, cached = self._solve_one(request)
                    if span:
                        span.attrs = {
                            "worker": self.worker_index,
                            "instance": request.instance_id,
                            "method": result.method,
                            "cached": cached,
                        }
                duration_ms = (time.perf_counter() - start) * 1000.0
                self._observe(result, cached, duration_ms)
                if span and cached:
                    # A cache hit runs no sub-phases: its whole breakdown is
                    # the solve span itself, no ring scan needed.
                    timing: Optional[Dict[str, float]] = {
                        "worker.solve": span.duration_ms
                    }
                else:
                    timing = tracer.phase_totals(mark) or None
                outcomes.append(("ok", result, cached, duration_ms, timing))
            except Exception as exc:  # noqa: BLE001 - a bad request (wrong
                # types included) must fail *that request*, never the batch
                # or the worker process.
                outcomes.append(("error", f"{type(exc).__name__}: {exc}"))
        return outcomes

    def _observe(self, result: PHomResult, cached: bool, duration_ms: float) -> None:
        """Fold one answered request into the route histogram and counters."""
        self._latency.labels(route_for_method(result.method)).observe(duration_ms)
        if not cached and result.method in PHomSolver.SAMPLING_METHODS:
            match = _SAMPLES_RE.search(result.notes or "")
            if match:
                self._sampler_samples.inc(int(match.group(1)))

    def stats(self) -> Dict[str, Any]:
        """Serving counters plus the per-worker plan-cache statistics.

        The counter values are read back from the telemetry registry's
        snapshot (which also rides along under the ``"metrics"`` key), so
        the stats view and the metrics view are two renderings of the same
        numbers and cannot drift apart.
        """
        plan_stats = (
            dict(self.solver.plan_cache.stats)
            if self.solver.plan_cache is not None
            else None
        )
        snapshot = self.metrics.snapshot()
        return {
            "worker": self.worker_index,
            "instances": sorted(self.instances),
            "plan_cache": plan_stats,
            "plan_evictions_by_instance": dict(self._plans_evicted_by_instance),
            "result_cache_size": len(self._result_cache),
            "result_cache_capacity": self.result_cache_size,
            "metrics": snapshot,
            **{
                name: int(counter_total(snapshot, f"repro_worker_{name}_total"))
                for name in self._counters
            },
        }

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _instance(self, instance_id: str) -> ProbabilisticGraph:
        try:
            return self.instances[instance_id]
        except KeyError:
            raise ServiceError(
                f"instance {instance_id!r} is not registered on worker "
                f"{self.worker_index}"
            ) from None

    def _solve_one(self, request: ServiceRequest) -> Tuple[PHomResult, bool]:
        instance = self._instance(request.instance_id)
        cacheable = (
            self.result_cache_size > 0 and request.cacheable(self.default_precision)
        )
        key = request.coalesce_key(self.default_precision) if cacheable else None
        if key is not None:
            hit = self._result_cache.get(key)
            if hit is not None:
                self._result_cache.move_to_end(key)
                self._counters["result_cache_hits"].inc()
                # Hand out a copy so callers mutating a result cannot poison
                # the cache (PHomResult is a mutable dataclass), re-described
                # for this request's spelling (the cache key is the query
                # *core*, so the hit may come from an equivalent query with
                # a different class and minimization provenance).
                return (
                    requalify_result(
                        replace(hit),
                        request.query,
                        # only auto requests ran the minimizing route (and
                        # only their cache keys merge spellings), so only
                        # they may carry minimization provenance
                        self.solver.minimize_queries and request.method == "auto",
                    ),
                    True,
                )
        result = self._dispatch(request, instance)
        self._counters["solved"].inc()
        if key is not None:
            self._result_cache[key] = replace(result)
            while len(self._result_cache) > self.result_cache_size:
                self._result_cache.popitem(last=False)
        return result, False

    def _dispatch(
        self, request: ServiceRequest, instance: ProbabilisticGraph
    ) -> PHomResult:
        solver = self.solver
        needs_params = request.may_sample(self.default_precision)
        saved = solver.approx_params
        if needs_params:
            # Per-request sampling fields override the service-level contract
            # (carried here by the solver prototype); unset fields inherit it.
            solver.approx_params = ApproxParams(
                epsilon=request.epsilon if request.epsilon is not None else saved.epsilon,
                delta=request.delta if request.delta is not None else saved.delta,
                seed=request.seed if request.seed is not None else saved.seed,
            )
        try:
            with warnings.catch_warnings():
                # Brute-force fallbacks are a per-request property; the
                # result's notes field already records them, so the warning
                # must not leak to the service process's stderr per request.
                warnings.simplefilter("ignore")
                return solver.solve(
                    request.query,
                    instance,
                    method=request.method,
                    precision=request.resolved_precision(self.default_precision),
                )
        finally:
            if needs_params:
                solver.approx_params = saved

    def _invalidate_results(self, instance_id: str) -> None:
        stale = [key for key in self._result_cache if key[0] == instance_id]
        for key in stale:
            del self._result_cache[key]

    def _on_plan_evict(self, key, plan) -> None:
        # The cache key pairs the canonical query form with id(instance);
        # resolve the id back to the registered name when possible.
        for name, instance in self.instances.items():
            if instance is plan.instance:
                self._plans_evicted_by_instance[name] = (
                    self._plans_evicted_by_instance.get(name, 0) + 1
                )
                return


def handle_message(state: WorkerState, op: str, payload: Any) -> Tuple[str, Any]:
    """Dispatch one protocol message against a worker state."""
    try:
        if op == "solve":
            # Payload is the entry list, optionally paired with a remote
            # trace context ``(entries, (trace_id, span_id) | None)`` — the
            # context rides the payload (never the cached frames, which are
            # shared across requests).  Entries are ServiceRequest objects
            # or pickled frames (the coordinator's frame cache ships hot
            # requests as bytes so their query graphs are serialized once,
            # not per dispatch).
            if isinstance(payload, tuple):
                entries, trace_context = payload
            else:
                entries, trace_context = payload, None
            requests = [
                pickle.loads(entry)
                if isinstance(entry, (bytes, bytearray))
                else entry
                for entry in entries
            ]
            tracer = current_tracer()
            token = tracer.adopt(trace_context)
            try:
                return ("ok", state.solve_batch(requests))
            finally:
                tracer.release(token)
        if op == "register":
            instance_id, instance, *updates = payload
            return ("ok", state.register(instance_id, instance, *updates))
        if op == "update":
            instance_id, endpoints, probability = payload
            state.update(instance_id, endpoints, probability)
            return ("ok", None)
        if op == "evaluate_many":
            instance_id, query, batches, precision, backend = payload
            return (
                "ok",
                state.evaluate_many(instance_id, query, batches, precision, backend),
            )
        if op == "warm":
            return ("ok", state.warm(payload))
        if op == "stats":
            return ("ok", state.stats())
        return ("error", f"unknown service op {op!r}")
    except Exception as exc:  # noqa: BLE001 - malformed payloads must come
        # back as protocol errors, not kill the worker.
        return ("error", f"{type(exc).__name__}: {exc}")


def worker_loop(
    worker_index: int,
    request_queue,
    reply_pipe,
    solver: PHomSolver,
    default_precision: str,
    result_cache_size: int,
    fault_plan: Optional[FaultPlan] = None,
    incarnation: int = 0,
    trace_enabled: bool = False,
) -> None:
    """Entry point of a worker process: serve messages until ``None`` arrives.

    The solver arrives through the pickling contract of
    :class:`~repro.core.solver.PHomSolver` (configuration only, fresh plan
    cache), so every worker starts cold and warms its own shard.

    ``reply_pipe`` is this incarnation's private write end — one writer per
    pipe, so replies need no cross-process lock and this worker's death
    (even mid-send) cannot block any other worker's replies.

    ``fault_plan`` (chaos builds only) injects deterministic misbehaviour:
    ``incarnation`` counts respawns of this worker index, so a non-``repeat``
    fault fires only on the first life while ``repeat`` faults re-arm on
    every respawn.

    ``trace_enabled`` installs an adoption-only :class:`~repro.obs.trace.Tracer`
    (``sample_rate=0.0`` — the worker records exactly the work whose request
    frame carried a trace context); finished spans piggyback on the reply
    frame as a fourth element, so tracing adds no extra pipe traffic.
    """
    injector = (
        fault_plan.for_worker(worker_index, incarnation)
        if fault_plan is not None
        else None
    )
    # Install this process's tracer unconditionally: under a ``fork`` start
    # method the child would otherwise inherit the coordinator's tracer —
    # sink handle, sampling RNG and all.
    tracer = Tracer(sample_rate=0.0) if trace_enabled else None
    set_tracer(tracer)
    state = WorkerState(
        worker_index,
        solver,
        default_precision,
        result_cache_size=result_cache_size,
        fault_injector=injector,
    )
    while True:
        message = request_queue.get()
        if message is None:
            break
        op_id, op, payload = message
        drop_reply = False
        corrupt_reply = False
        if injector is not None:
            for fault in injector.on_message():
                if fault.kind == "kill":
                    # Die *before* handling, like a segfault: the message is
                    # lost and no reply is ever sent.  os._exit skips every
                    # cleanup handler, matching a hard crash.
                    os._exit(FAULT_KILL_EXIT_CODE)
                elif fault.kind == "delay":
                    time.sleep(fault.seconds)
                elif fault.kind == "drop":
                    drop_reply = True
                elif fault.kind == "corrupt":
                    corrupt_reply = True
        try:
            reply = handle_message(state, op, payload)
        except Exception as exc:  # noqa: BLE001 - the process must survive
            # and reply, or the client blocks for its full timeout.
            reply = ("error", f"{type(exc).__name__}: {exc}")
        if drop_reply:
            continue
        if corrupt_reply and injector is not None:
            # A well-pickled frame whose *shape* is garbage: the coordinator's
            # protocol validation rejects it and treats the worker as broken.
            frame = (worker_index, op_id, injector.corrupt_bytes())
        else:
            frame = (worker_index, op_id, reply)
            if tracer is not None:
                spans = tracer.drain()
                if spans:
                    # Piggyback the finished spans on the reply frame; a
                    # worker that dies before sending loses them with the
                    # reply itself, which is exactly the retried case the
                    # coordinator closes on its side.
                    frame = (worker_index, op_id, reply, spans)
        try:
            reply_pipe.send(frame)
        except (BrokenPipeError, OSError):  # pragma: no cover - the
            # coordinator closed this incarnation's pipe (restart/shutdown);
            # nobody will read another reply, so exit quietly.
            break
    try:
        reply_pipe.close()
    except Exception:  # pragma: no cover - teardown race
        pass
