"""The ``repro serve --batch`` protocol: JSONL requests in, JSONL results out.

Each input line is one JSON object with an ``"op"`` field:

``register``
    ``{"op": "register", "id": "inst1", "instance": {...}}`` installs a
    probabilistic instance (graph-dictionary format of
    :mod:`repro.graphs.serialization`); ``{"path": "instance.json"}`` loads
    it from a file instead.
``solve``
    ``{"op": "solve", "id": "r1", "instance": "inst1", "query": {...},
    "precision": "float", ...}`` — see
    :func:`repro.service.requests.request_from_json_dict` for every field.
    ``query`` is a graph object or a query-language string
    (``"query": "R(x, y), S(y, z)"``); ambiguous payloads (a string that
    looks like encoded JSON) are rejected with an ``{"error": ...}`` line.
``update``
    ``{"op": "update", "instance": "inst1", "edge": ["a", "b"],
    "probability": "1/3"}`` applies a single-edge probability change.

Consecutive ``solve`` lines form one micro-batch: they are submitted
together (so duplicates coalesce and distinct requests parallelise) and
their results stream out in input order, one JSON object per line, before
the next non-``solve`` op executes.  ``register`` and ``update`` emit an
acknowledgement line.  A line that fails emits ``{"error": ...}`` (with the
request id when there is one) and processing continues; the session's exit
code reports whether any line failed.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, TextIO

from repro.exceptions import ReproError, ServiceError
from repro.graphs.serialization import load_instance, probabilistic_graph_from_dict
from repro.service.requests import (
    ServiceRequest,
    request_from_json_dict,
    result_to_json_dict,
)
from repro.service.service import QueryService


def _emit(out: TextIO, payload: Dict[str, Any]) -> None:
    out.write(json.dumps(payload, sort_keys=True) + "\n")
    out.flush()


def _flush_batch(
    service: QueryService, batch: List[ServiceRequest], out: TextIO
) -> int:
    """Submit the pending solve micro-batch; returns the number of failures.

    Failed requests stream an ``{"error": ...}`` line; the healthy requests
    of the same micro-batch keep their (already computed) results — nothing
    is re-submitted.
    """
    if not batch:
        return 0
    failures = 0
    for request, outcome in zip(batch, service.submit_many(batch, on_error="return")):
        if outcome.error is not None:
            failures += 1
            _emit(out, {"id": request.request_id, "error": outcome.error})
        else:
            _emit(out, result_to_json_dict(outcome))
    batch.clear()
    return failures


def run_jsonl_session(
    lines: Iterable[str], out: TextIO, service: QueryService
) -> int:
    """Drive a service from JSONL input lines; returns a process exit code."""
    failures = 0
    batch: List[ServiceRequest] = []
    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            failures += _flush_batch(service, batch, out)
            failures += 1
            _emit(out, {"error": f"line {line_number}: invalid JSON: {exc}"})
            continue
        op = data.get("op", "solve")
        try:
            if op == "solve":
                batch.append(request_from_json_dict(data))
                continue
            failures += _flush_batch(service, batch, out)
            if op == "register":
                instance_id = _handle_register(service, data)
                _emit(out, {"ok": True, "op": "register", "instance": instance_id})
            elif op == "update":
                _handle_update(service, data)
                _emit(out, {"ok": True, "op": "update", "instance": data["instance"]})
            else:
                raise ServiceError(f"unknown op {op!r}")
        except (ReproError, ValueError, OSError, KeyError) as exc:
            failures += 1
            _emit(out, {"error": f"line {line_number}: {exc}"})
    failures += _flush_batch(service, batch, out)
    return 1 if failures else 0


def _handle_register(service: QueryService, data: Dict[str, Any]) -> str:
    instance_id: Optional[str] = data.get("id")
    if "instance" in data:
        instance = probabilistic_graph_from_dict(data["instance"])
    elif "path" in data:
        instance = load_instance(str(data["path"]))
    else:
        raise ServiceError("register op needs an 'instance' object or a 'path'")
    return service.register_instance(instance, instance_id)


def _handle_update(service: QueryService, data: Dict[str, Any]) -> None:
    if "instance" not in data or "edge" not in data or "probability" not in data:
        raise ServiceError("update op needs 'instance', 'edge' and 'probability'")
    edge = data["edge"]
    if not isinstance(edge, (list, tuple)) or len(edge) != 2:
        raise ServiceError(f"update edge must be a [source, target] pair, got {edge!r}")
    service.update_probability(
        str(data["instance"]), (str(edge[0]), str(edge[1])), data["probability"]
    )
