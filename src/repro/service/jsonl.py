"""The ``repro serve --batch`` protocol: JSONL requests in, JSONL results out.

Each input line is one JSON object with an ``"op"`` field:

``register``
    ``{"op": "register", "id": "inst1", "instance": {...}}`` installs a
    probabilistic instance (graph-dictionary format of
    :mod:`repro.graphs.serialization`); ``{"path": "instance.json"}`` loads
    it from a file instead.
``solve``
    ``{"op": "solve", "id": "r1", "instance": "inst1", "query": {...},
    "precision": "float", ...}`` — see
    :func:`repro.service.requests.request_from_json_dict` for every field,
    including the ``deadline_ms`` / ``on_deadline`` latency policy.
    ``query`` is a graph object or a query-language string
    (``"query": "R(x, y), S(y, z)"``); ambiguous payloads (a string that
    looks like encoded JSON) are rejected with a failure record.
``update``
    ``{"op": "update", "instance": "inst1", "edge": ["a", "b"],
    "probability": "1/3"}`` applies a single-edge probability change.

Consecutive ``solve`` lines form one micro-batch: they are submitted
together (so duplicates coalesce and distinct requests parallelise) and
their results stream out in input order, one JSON object per line, before
the next non-``solve`` op executes.  ``register`` and ``update`` emit an
acknowledgement line.

The stream is resilient: a malformed or failing line never aborts the
session.  It emits a typed **failure record** instead and processing
continues with the next line::

    {"error": "<message>", "error_class": "<ExceptionType>",
     "line": <input line number>, "retryable": <bool>, "id": <request id>}

``error_class`` is the exception type that rejected the line
(``ServiceError``, ``QueryParseError``, ``JSONDecodeError``, ...);
``retryable`` is true exactly for transient serving failures
(``ServiceUnavailableError``, ``DeadlineExceededError``) where re-sending
the same line later could succeed, and false for deterministic errors.
``id`` is present when the line carried one.  The session's exit code
reports whether any line failed.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, Iterable, List, Optional, TextIO, Tuple

from repro.exceptions import ServiceError
from repro.graphs.serialization import load_instance, probabilistic_graph_from_dict
from repro.service.requests import (
    ServiceRequest,
    request_from_json_dict,
    result_to_json_dict,
)
from repro.service.service import QueryService

#: Error classes worth re-sending the same line for (transient failures).
RETRYABLE_ERROR_CLASSES = ("ServiceUnavailableError", "DeadlineExceededError")


def _emit(out: TextIO, payload: Dict[str, Any]) -> None:
    out.write(json.dumps(payload, sort_keys=True) + "\n")
    out.flush()


def failure_record(
    message: str,
    error_class: Optional[str],
    line_number: int,
    request_id: Optional[str] = None,
) -> Dict[str, Any]:
    """The typed per-line failure record of the JSONL protocol."""
    record: Dict[str, Any] = {
        "error": message,
        "error_class": error_class,
        "line": line_number,
        "retryable": error_class in RETRYABLE_ERROR_CLASSES,
    }
    if request_id is not None:
        record["id"] = request_id
    return record


def _flush_batch(
    service: QueryService, batch: List[Tuple[int, ServiceRequest]], out: TextIO
) -> int:
    """Submit the pending solve micro-batch; returns the number of failures.

    Failed requests stream a failure record; the healthy requests of the
    same micro-batch keep their (already computed) results — nothing is
    re-submitted.
    """
    if not batch:
        return 0
    failures = 0
    requests = [request for _, request in batch]
    try:
        outcomes = service.submit_many(requests, on_error="return")
    except Exception as exc:  # noqa: BLE001 - a coordinator-level failure
        # must fail the *batch's lines*, not tear the whole session down.
        for line_number, request in batch:
            failures += 1
            _emit(
                out,
                failure_record(
                    str(exc), type(exc).__name__, line_number, request.request_id
                ),
            )
        batch.clear()
        return failures
    for (line_number, request), outcome in zip(batch, outcomes):
        if outcome.error is not None:
            failures += 1
            _emit(
                out,
                failure_record(
                    outcome.error,
                    outcome.error_class,
                    line_number,
                    request.request_id,
                ),
            )
        else:
            _emit(out, result_to_json_dict(outcome))
    batch.clear()
    return failures


def run_jsonl_session(
    lines: Iterable[str],
    out: TextIO,
    service: QueryService,
    on_batch: Optional[Callable[[], None]] = None,
) -> int:
    """Drive a service from JSONL input lines; returns a process exit code.

    ``on_batch``, when given, is called after every flushed solve
    micro-batch and after every ``register``/``update`` acknowledgement —
    the hook behind ``repro serve --metrics-out``, which refreshes the
    on-disk metrics snapshot there so ``repro top --watch`` stays live
    during a long session.
    """
    failures = 0
    batch: List[Tuple[int, ServiceRequest]] = []

    def flush() -> int:
        flushed = len(batch)
        failed = _flush_batch(service, batch, out)
        if flushed and on_batch is not None:
            on_batch()
        return failed

    for line_number, line in enumerate(lines, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        try:
            data = json.loads(line)
        except json.JSONDecodeError as exc:
            failures += flush()
            failures += 1
            _emit(
                out,
                failure_record(f"invalid JSON: {exc}", "JSONDecodeError", line_number),
            )
            continue
        op = data.get("op", "solve")
        request_id = str(data["id"]) if "id" in data else None
        try:
            if op == "solve":
                batch.append((line_number, request_from_json_dict(data)))
                continue
            failures += flush()
            if op == "register":
                instance_id = _handle_register(service, data)
                _emit(out, {"ok": True, "op": "register", "instance": instance_id})
            elif op == "update":
                _handle_update(service, data)
                _emit(out, {"ok": True, "op": "update", "instance": data["instance"]})
            else:
                raise ServiceError(f"unknown op {op!r}")
            if on_batch is not None:
                on_batch()
        except Exception as exc:  # noqa: BLE001 - one bad line must never
            # abort the stream; it becomes a typed failure record.
            failures += 1
            _emit(
                out,
                failure_record(str(exc), type(exc).__name__, line_number, request_id),
            )
    failures += flush()
    return 1 if failures else 0


def _handle_register(service: QueryService, data: Dict[str, Any]) -> str:
    instance_id: Optional[str] = data.get("id")
    if "instance" in data:
        instance = probabilistic_graph_from_dict(data["instance"])
    elif "path" in data:
        instance = load_instance(str(data["path"]))
    else:
        raise ServiceError("register op needs an 'instance' object or a 'path'")
    return service.register_instance(instance, instance_id)


def _handle_update(service: QueryService, data: Dict[str, Any]) -> None:
    if "instance" not in data or "edge" not in data or "probability" not in data:
        raise ServiceError("update op needs 'instance', 'edge' and 'probability'")
    edge = data["edge"]
    if not isinstance(edge, (list, tuple)) or len(edge) != 2:
        raise ServiceError(f"update edge must be a [source, target] pair, got {edge!r}")
    service.update_probability(
        str(data["instance"]), (str(edge[0]), str(edge[1])), data["probability"]
    )
