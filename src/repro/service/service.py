"""The parallel query-serving layer: :class:`QueryService`.

``QueryService`` turns the single-process solving stack — batch solving
(:meth:`~repro.core.solver.PHomSolver.solve_many`), compiled plans
(:mod:`repro.plan`) and the ``(ε, δ)`` samplers (:mod:`repro.approx`) — into
one servable system:

* **Two-level sharding: balanced affinity plus work stealing.**  Every
  registered instance is *owned* by exactly one worker process — assigned
  least-loaded at registration time, so K instances always spread over
  ``min(K, num_workers)`` workers — and that worker's frozen instance
  graph, memoised metadata and compiled-plan cache stay warm across the
  whole request stream.  On top of the affinity tier, the coordinator
  steals work per batch: when one shard's queue is lopsided while another
  worker sits idle, independent requests move to the idle worker, shipping
  the instance's journal snapshot bytes on the first steal and keeping the
  stolen replica warm afterwards (replicas are soft state, invalidated by
  :meth:`QueryService.update_probability` and dropped on worker restart).
* **Request coalescing.**  Duplicate requests — same instance, same
  canonical query form (:func:`repro.plan.canonical_query_key`), same
  options — are detected *before* dispatch; each distinct computation runs
  once per batch and its duplicates receive copies, extending the
  ``solve_many`` dedupe across instances and worker boundaries.  Worker-side
  result caches additionally answer repeats across batches without
  re-running even the arithmetic (until an update invalidates them).
* **Mixed precision per request.**  Every request chooses ``exact`` /
  ``float`` / ``approx`` independently; sampled answers carry their
  ``(ε, δ, seed)`` contract, and a pinned seed reproduces the estimate bit
  for bit no matter which worker runs it.
* **Live updates.**  :meth:`QueryService.update_probability` applies a
  single-edge probability change on the owning worker (and on the caller's
  registered instance object, keeping both views consistent); compiled plans
  survive — they capture structure only — while stale cached results are
  dropped.

``num_workers=0`` runs the identical serving logic inline (no processes),
which is the zero-overhead mode for tests, small workloads and single-core
machines.
"""

from __future__ import annotations

import itertools
import multiprocessing
import multiprocessing.connection
import os
import pickle
import random
import time
import warnings
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.approx import ApproxParams
from repro.core.solver import PHomResult, PHomSolver, requalify_result
from repro.exceptions import (
    DeadlineExceededError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.graphs.digraph import DiGraph, Edge
from repro.obs.metrics import MetricsRegistry, counter_total, counter_value, merge_snapshots
from repro.obs.trace import NULL_TRACER, Span, Tracer, set_tracer
from repro.persist import PlanStore, WriteAheadLog
from repro.probability.prob_graph import ProbabilisticGraph
from repro.service.faults import DiskFaultInjector, FaultPlan, epsilon_for_budget
from repro.service.requests import ServiceRequest, ServiceResult
from repro.service.worker import WorkerState, handle_message, worker_loop

RequestLike = Union[ServiceRequest, Tuple[DiGraph, Any]]

#: Cap on :attr:`QueryService.restart_log` entries kept in memory; older
#: entries are dropped (the total is still counted in ``stats().restarts``).
RESTART_LOG_LIMIT = 256

#: Write-ahead-log appends between automatic compactions of the durable
#: state (folding last-write-wins updates into fresh snapshots).
WAL_COMPACT_AFTER = 4096

#: Capacity of the coordinator's dispatch-frame cache (coalesce key ->
#: pickled request bytes): hot queries on a Zipf trace are re-submitted
#: every tick, and re-pickling their graphs per request dominates dispatch
#: once the worker caches are warm.
FRAME_CACHE_LIMIT = 4096

#: Minimum per-batch difference between the busiest worker's *cold* request
#: count (coalesce keys never dispatched before) and the idlest worker's
#: queue length before the coordinator steals a request (a difference of 1
#: cannot be improved by moving work).
STEAL_IMBALANCE = 2

#: Cap on :attr:`QueryService.slow_queries` entries kept in memory; older
#: entries are dropped, newest last.
SLOW_QUERY_LOG_LIMIT = 256

#: The service-level counters (``repro_service_<name>_total`` in the
#: telemetry registry), in the field order of :class:`ServiceStats`.
_SERVICE_COUNTERS = (
    ("requests", "Normalisable requests submitted."),
    ("rejected", "Requests that failed normalization."),
    ("batches", "submit_many calls."),
    ("updates", "Probability updates applied."),
    ("restarts", "Worker processes respawned."),
    ("retries", "Request re-dispatches after a worker failure."),
    ("deadline_hits", "Requests that missed their deadline."),
    ("degraded", "Deadline misses answered by the approximate tier."),
    ("steals", "Requests moved off their owning shard."),
    ("replicas_shipped", "Instance snapshots shipped for stealing."),
)


@dataclass
class ServiceStats:
    """A snapshot of serving statistics.

    ``requests`` counts every *normalisable* request submitted (entries that
    fail normalization under ``on_error="return"`` are counted in
    ``rejected`` instead, so they cannot skew :meth:`dedupe_hit_rate`);
    ``dispatched`` counts the distinct computations actually sent to workers
    after coalescing, so ``coalesced == requests - dispatched`` duplicates
    never crossed the dispatch boundary.  ``steals`` counts requests the
    coordinator moved off their owning shard onto an idle worker, and
    ``replicas_shipped`` the instance snapshots shipped to make that
    possible.  ``workers`` holds one per-worker dictionary — keyed by its
    ``"worker"`` index, in index order — with the worker's serving counters,
    its plan-cache statistics (hits, misses, compiles, evictions — see
    :attr:`repro.plan.PlanCache.stats`), its telemetry snapshot (under
    ``"metrics"``) and its share of the coordinator's ``dispatched``
    counter, so an idle shard is visible as that worker's zeroed counters
    rather than as an anonymous entry.  Every number is read back from the
    telemetry registries (see :meth:`QueryService.stats`), so the pool
    totals always equal the sum of the per-worker rows.

    The reliability counters record supervision activity: ``restarts``
    (worker processes respawned after a crash or hang), ``retries``
    (request re-dispatches onto a fresh incarnation), ``deadline_hits``
    (requests that missed their ``deadline_ms``) and ``degraded``
    (deadline misses answered through the approximate tier).
    """

    requests: int = 0
    rejected: int = 0
    dispatched: int = 0
    coalesced: int = 0
    batches: int = 0
    updates: int = 0
    restarts: int = 0
    retries: int = 0
    deadline_hits: int = 0
    degraded: int = 0
    steals: int = 0
    replicas_shipped: int = 0
    workers: List[Dict[str, Any]] = field(default_factory=list)

    def dedupe_hit_rate(self) -> float:
        """Fraction of submitted requests answered by coalescing alone."""
        if self.requests == 0:
            return 0.0
        return self.coalesced / self.requests

    def result_cache_hits(self) -> int:
        """Total worker-side result-cache hits across the pool."""
        return sum(w.get("result_cache_hits", 0) for w in self.workers)


@dataclass
class _InstanceJournal:
    """Coordinator-side record of one shard instance, for worker replay.

    ``snapshot`` is the instance pickled at registration time;
    ``updates`` is the compacted (last-write-wins) sequence of probability
    updates applied since.  Replaying ``snapshot + updates`` reconstructs
    the worker-side state exactly — including its isolation from direct
    mutations of the caller's instance object.  ``version`` changes on
    every state change, so degraded-answer reconstructions can be memoised.
    """

    snapshot: bytes
    updates: "OrderedDict[Tuple, Any]" = field(default_factory=OrderedDict)
    version: int = 0


@dataclass
class _PendingOp:
    """One in-flight worker op tracked by the supervision loop.

    ``attempts`` counts dispatches so far (1 = first try); ``retry_at`` is
    the monotonic instant a backed-off retry becomes due (``None`` while the
    op is genuinely in flight); ``deadline`` is the monotonic instant the
    op's request budget expires; ``history`` accumulates one line per failed
    attempt for :class:`~repro.exceptions.ServiceUnavailableError` notes.
    ``instance_ids`` names the instances the op's requests touch, so a
    retry onto a freshly restarted worker can re-ship any stolen replicas
    the old incarnation held before the op is resent.
    """

    op_id: int
    worker: int
    op: str
    payload: Any
    created_at: float
    sent_at: float
    attempts: int = 1
    retry_at: Optional[float] = None
    deadline: Optional[float] = None
    history: List[str] = field(default_factory=list)
    instance_ids: Tuple[str, ...] = ()
    #: The root span's ``(trace_id, span_id)`` when the op's batch is being
    #: traced — each dispatch *attempt* gets its own detached span under it.
    trace_parent: Optional[Tuple[str, str]] = None


class QueryService:
    """A parallel, deduplicating front end over the PHom solving stack.

    Parameters
    ----------
    num_workers:
        Size of the worker-process pool.  ``0`` serves inline in the calling
        process (no subprocesses, same semantics); ``None`` picks
        ``min(4, cpu_count)``.
    default_precision:
        Precision applied to requests that do not choose one
        (``"exact"`` / ``"float"`` / ``"approx"``).
    allow_brute_force / prefer / plan_cache_size / epsilon / delta / seed:
        Forwarded to each worker's :class:`~repro.core.solver.PHomSolver`.
    result_cache_size:
        Capacity of each worker's result cache (``0`` disables result
        caching; coalescing within a batch still applies).
    start_method:
        Multiprocessing start method (``"fork"`` / ``"spawn"`` / ...);
        ``None`` picks ``fork`` where available, else the platform default.
    timeout:
        Seconds without a reply before a worker is declared unresponsive.
        An unresponsive (or dead) worker is restarted, its shard state is
        replayed from the coordinator journal, and its in-flight requests
        are retried on the fresh incarnation.
    max_retries:
        Re-dispatches allowed per request after a worker failure before the
        request fails with :class:`~repro.exceptions.ServiceUnavailableError`
        (so a request is attempted at most ``1 + max_retries`` times).
    backoff_base / backoff_cap:
        Capped exponential backoff between retry dispatches, in seconds:
        attempt ``k`` waits ``min(cap, base * 2**(k-1))`` scaled by a seeded
        jitter factor in ``[0.5, 1.0)``.
    poll_interval:
        Granularity (seconds) of the supervision loop's liveness, deadline
        and backoff checks while waiting for replies.
    work_stealing:
        Enable the second sharding tier: per-batch coordinator-side work
        stealing (see :meth:`_steal_balance`).  ``False`` pins every
        request to its instance's owning worker — pure affinity routing,
        the knob the routing-equivalence tests flip to show answers do not
        depend on which worker ran them.
    fault_plan:
        Optional :class:`~repro.service.faults.FaultPlan` shipped to every
        worker incarnation — the chaos-testing hook; ``None`` in production.
        Disk-fault kinds in the plan are threaded through the persistence
        write path (see :class:`~repro.service.faults.DiskFaultInjector`)
        and only take effect together with ``state_dir``.
    state_dir:
        Optional directory of durable state (:mod:`repro.persist`).  When
        given, every acknowledged registration and probability update is
        appended to a write-ahead log under ``<state_dir>/wal`` before the
        call returns, compiled plans are written through to a checksummed
        store under ``<state_dir>/plans``, and *startup replays the log*:
        the instance journal is restored, every restored instance is
        re-registered with its owning worker, and the workers pre-load the
        instances' stored plans — a warm restart recompiles nothing.  The
        :attr:`recovery` attribute reports what startup found.
    wal_fsync:
        The write-ahead log's durability policy: ``"always"`` fsyncs every
        append, ``"batch"`` (default) flushes per append and fsyncs on
        compaction and close, ``"never"`` leaves flushing to the OS.
    journal_update_limit:
        Per-instance bound on the in-memory update journal: once an
        instance accumulates this many distinct updated edges, the journal
        folds them into a fresh snapshot (the durable log compacts on its
        own cadence, ``WAL_COMPACT_AFTER`` appends).
    trace_sample_rate:
        Probability that one ``submit_many`` call is traced end to end
        (``0.0``, the default, disables tracing entirely — the hooks hit a
        no-op tracer and allocate nothing).  A traced call opens a root
        span, ships its context to the workers inside the request frames,
        and folds the workers' spans (piggybacked on their reply frames)
        back into one trace.
    trace_path:
        Optional JSONL sink for finished spans (rendered by
        ``repro trace``); without it, spans stay in the tracer's in-memory
        ring buffer.
    slow_query_ms:
        Optional threshold (milliseconds of worker-side solve time) above
        which a request is recorded in :attr:`slow_queries` with its
        dispatch provenance; ``None`` disables the slow-query log.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        *,
        default_precision: str = "exact",
        allow_brute_force: bool = True,
        prefer: str = "dp",
        plan_cache_size: int = 128,
        result_cache_size: int = 1024,
        epsilon: float = 0.05,
        delta: float = 0.01,
        seed: Optional[int] = None,
        start_method: Optional[str] = None,
        timeout: float = 300.0,
        max_retries: int = 2,
        backoff_base: float = 0.05,
        backoff_cap: float = 1.0,
        poll_interval: float = 0.05,
        work_stealing: bool = True,
        fault_plan: Optional[FaultPlan] = None,
        state_dir: Optional[str] = None,
        wal_fsync: str = "batch",
        journal_update_limit: int = 256,
        trace_sample_rate: float = 0.0,
        trace_path: Optional[str] = None,
        slow_query_ms: Optional[float] = None,
    ) -> None:
        if default_precision not in ("exact", "float", "approx"):
            raise ServiceError(
                f"unknown default precision {default_precision!r}"
            )
        if num_workers is None:
            num_workers = min(4, os.cpu_count() or 1)
        if num_workers < 0:
            raise ServiceError(f"num_workers must be >= 0, got {num_workers}")
        self.num_workers = num_workers
        self.default_precision = default_precision
        #: The service-level sampling contract, inherited by requests that
        #: leave epsilon / delta / seed unset.
        self.default_epsilon = epsilon
        self.default_delta = delta
        self.default_seed = seed
        self.timeout = timeout
        if max_retries < 0:
            raise ServiceError(f"max_retries must be >= 0, got {max_retries}")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.poll_interval = poll_interval
        self.work_stealing = work_stealing
        self.fault_plan = fault_plan
        if journal_update_limit <= 0:
            raise ServiceError(
                f"journal_update_limit must be positive, got {journal_update_limit}"
            )
        self.state_dir = state_dir
        self.journal_update_limit = journal_update_limit
        #: Appends rejected by the disk (ENOSPC and friends) — each one is a
        #: state change that stayed in memory but lost durability.
        self.wal_errors = 0
        self._wal: Optional[WriteAheadLog] = None
        self._plan_store: Optional[PlanStore] = None
        #: Startup recovery report (``None`` without ``state_dir``): the
        #: write-ahead log's :class:`~repro.persist.WalRecovery` plus how
        #: many instances were restored and how many stored plans the
        #: workers pre-loaded.
        self.recovery: Optional[Dict[str, Any]] = None
        self._disk_faults = (
            DiskFaultInjector(fault_plan)
            if fault_plan is not None and state_dir is not None
            else None
        )
        if state_dir is not None:
            if os.path.exists(state_dir) and not os.path.isdir(state_dir):
                raise ServiceError(f"state_dir {state_dir!r} is not a directory")
            os.makedirs(state_dir, exist_ok=True)
            self._plan_store = PlanStore(
                os.path.join(state_dir, "plans"), fault_injector=self._disk_faults
            )
            self._wal = WriteAheadLog(
                os.path.join(state_dir, "wal"),
                fsync=wal_fsync,
                fault_injector=self._disk_faults,
            )
        self._closed = False
        self._instances: Dict[str, ProbabilisticGraph] = {}
        self._ids_by_identity: Dict[int, str] = {}
        self._journal: Dict[str, _InstanceJournal] = {}
        self._degrade_memo: Dict[str, Tuple[int, ProbabilisticGraph]] = {}
        self._degrade_solver: Optional[PHomSolver] = None
        self._next_instance = itertools.count()
        self._next_op = itertools.count()
        # Two-level sharding state: the affinity map (instance id -> owning
        # worker, assigned least-loaded and stable for the id's lifetime)
        # and the soft replica map (instance id -> non-owner workers
        # currently holding a stolen copy of its journal state).
        self._assignment: Dict[str, int] = {}
        self._replicas: Dict[str, set] = {}
        # Dispatch-frame cache: coalesce key -> (pickled request bytes, the
        # query object the frame was built from — identity-compared to flag
        # positions whose answer needs coordinator-side requalification).
        self._frame_cache: "OrderedDict[Hashable, Tuple[bytes, Any]]" = OrderedDict()
        # The coordinator's telemetry registry is the single source of the
        # service-level counters: stats() reads them back from one snapshot,
        # so the ServiceStats totals and the per-worker rows cannot disagree
        # (``dispatched`` is labeled by worker and summed for the total).
        self.metrics = MetricsRegistry()
        self._counters = {
            name: self.metrics.counter(f"repro_service_{name}_total", help)
            for name, help in _SERVICE_COUNTERS
        }
        self._dispatched = self.metrics.counter(
            "repro_service_dispatched_total",
            "Distinct computations dispatched after coalescing, by worker.",
            labelnames=("worker",),
        )
        self._batch_latency = self.metrics.histogram(
            "repro_service_batch_ms",
            "submit_many wall time at the coordinator.",
        )
        # Tracing: a sampling tracer installed process-wide (the library
        # hooks report to it) while this service lives; NULL_TRACER when
        # disabled, so every hook stays allocation-free.
        self.trace_sample_rate = trace_sample_rate
        self.slow_query_ms = slow_query_ms
        #: Newest-last ring of slow-request records (see ``slow_query_ms``).
        self.slow_queries: List[Dict[str, Any]] = []
        self._tracer: Any = NULL_TRACER
        self._previous_tracer: Any = None
        self._op_spans: Dict[int, Span] = {}
        if trace_sample_rate > 0.0:
            self._tracer = Tracer(
                sample_rate=trace_sample_rate,
                sink_path=trace_path,
                seed=seed if seed is not None else 0,
            )
            self._previous_tracer = set_tracer(self._tracer)
        #: One dict per worker restart (worker, incarnation, reason,
        #: duration_s, instances_replayed) — the raw data behind the
        #: ``service_recovery`` benchmark section.
        self.restart_log: List[Dict[str, Any]] = []
        # Reply bookkeeping: op_ids whose reply must be discarded on arrival
        # (deadline-abandoned requests / fire-and-forget journal replays),
        # mapped to the worker they were sent to so restarts can prune them.
        self._abandoned: Dict[int, int] = {}
        self._background: Dict[int, int] = {}
        # Seeded jitter so chaos runs back off identically run to run.
        self._backoff_rng = random.Random(seed if seed is not None else 0)
        self._result_cache_size = result_cache_size

        def make_solver() -> PHomSolver:
            return PHomSolver(
                allow_brute_force=allow_brute_force,
                prefer=prefer,
                precision=default_precision,
                plan_cache_size=plan_cache_size,
                epsilon=epsilon,
                delta=delta,
                seed=seed,
                plan_store=self._plan_store,
            )

        self._make_solver = make_solver
        if num_workers == 0:
            self._inline: Optional[WorkerState] = WorkerState(
                0,
                make_solver(),
                default_precision,
                result_cache_size,
                fault_injector=(
                    fault_plan.for_worker(0, 0) if fault_plan is not None else None
                ),
            )
            self._processes: List = []
            self._queues: List = []
            self._readers: List = []
            self._incarnations: List[int] = []
            self._recover_from_state()
            return
        self._inline = None
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = multiprocessing.get_context(start_method)
        self._queues = [self._context.Queue() for _ in range(num_workers)]
        # One reply pipe per worker incarnation, never shared: a worker
        # terminated mid-send can wedge only its own channel (discarded on
        # restart), unlike a shared result queue whose write lock would die
        # held and deadlock every surviving worker.
        self._readers: List[Optional[Any]] = [None] * num_workers
        self._processes = []
        self._incarnations = [0] * num_workers
        for index in range(num_workers):
            self._processes.append(self._spawn_worker(index))
        self._recover_from_state()

    def _spawn_worker(self, index: int):
        """Start one worker process for the current incarnation of ``index``.

        Each incarnation gets a fresh reply pipe; the parent drops its copy
        of the write end so a dead worker reads as EOF, not as silence.
        """
        reader, writer = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=worker_loop,
            args=(
                index,
                self._queues[index],
                writer,
                self._make_solver(),
                self.default_precision,
                self._result_cache_size,
                self.fault_plan,
                self._incarnations[index],
                self.trace_sample_rate > 0.0,
            ),
            daemon=True,
        )
        process.start()
        writer.close()
        self._readers[index] = reader
        return process

    # ------------------------------------------------------------------
    # durable state
    # ------------------------------------------------------------------
    def _recover_from_state(self) -> None:
        """Replay the write-ahead log and warm the workers from the store.

        Runs once, at the end of ``__init__`` (after the worker pool — or
        the inline state — exists).  Replay folds the log into per-instance
        journals (a later registration supersedes everything before it, and
        updates are last-write-wins per edge, exactly like the in-memory
        journal), re-registers each restored instance with its owning
        worker, and asks that worker to pre-load the instance's stored
        plans.  The result is recorded in :attr:`recovery`.
        """
        if self._wal is None:
            return
        folded: "OrderedDict[str, _InstanceJournal]" = OrderedDict()
        for record in self._wal.replay():
            if not (isinstance(record, tuple) and len(record) >= 2):
                continue  # unknown record shapes are skipped, not fatal
            kind = record[0]
            if kind == "register" and len(record) == 3:
                instance_id, snapshot = record[1], record[2]
                previous = folded.pop(instance_id, None)
                folded[instance_id] = _InstanceJournal(
                    snapshot=snapshot,
                    version=(previous.version + 1) if previous is not None else 0,
                )
            elif kind == "update" and len(record) == 4:
                journal = folded.get(record[1])
                if journal is not None:
                    endpoints, probability = record[2], record[3]
                    journal.updates[endpoints] = probability
                    journal.updates.move_to_end(endpoints)
                    journal.version += 1
        restored = 0
        warmed = 0
        highest_numbered = -1
        for instance_id, journal in folded.items():
            instance = pickle.loads(journal.snapshot)
            for endpoints, probability in journal.updates.items():
                instance.set_probability(endpoints, probability)
            self._journal[instance_id] = journal
            self._instances[instance_id] = instance
            self._ids_by_identity[id(instance)] = instance_id
            worker = self._worker_for(instance_id)
            # Ship the journal bytes as-is (snapshot plus folded updates);
            # the worker unpickles and applies them, so recovery never
            # re-pickles a restored instance just to cross the queue.
            self._call(
                worker,
                "register",
                (instance_id, journal.snapshot, tuple(journal.updates.items())),
            )
            warmed += self._call(worker, "warm", instance_id)
            restored += 1
            # Keep auto-generated ids ("instance-N") unique across restarts.
            if instance_id.startswith("instance-"):
                suffix = instance_id[len("instance-") :]
                if suffix.isdigit():
                    highest_numbered = max(highest_numbered, int(suffix))
        if highest_numbered >= 0:
            self._next_instance = itertools.count(highest_numbered + 1)
        self.recovery = {
            "wal": self._wal.recovery,
            "instances_restored": restored,
            "plans_warmed": warmed,
        }

    def _wal_append(self, record: Tuple) -> None:
        """Append one state change to the write-ahead log (if configured).

        A failing disk (ENOSPC — injected or real) degrades instead of
        crashing: the state change stays applied in memory and on the
        workers, the lost durability is counted in :attr:`wal_errors`, and
        serving continues.
        """
        if self._wal is None:
            return
        try:
            self._wal.append(record)
        except OSError:
            self.wal_errors += 1
            return
        if self._wal.appended >= WAL_COMPACT_AFTER:
            self.compact_state()

    def compact_state(self) -> None:
        """Fold the durable log into one snapshot-only segment.

        Rewrites the write-ahead log from the live in-memory journal — one
        registration record per instance carrying a freshly folded
        snapshot, no update records — via an atomic segment swap.  A crash
        during compaction leaves either the old log or the new one.  No-op
        without ``state_dir``.
        """
        if self._wal is None:
            return
        records: List[Tuple] = []
        for instance_id, journal in self._journal.items():
            if journal.updates:
                instance = pickle.loads(journal.snapshot)
                for endpoints, probability in journal.updates.items():
                    instance.set_probability(endpoints, probability)
                snapshot = pickle.dumps(instance)
            else:
                snapshot = journal.snapshot
            records.append(("register", instance_id, snapshot))
        try:
            self._wal.compact(records)
        except OSError:  # pragma: no cover - compaction needs disk space
            self.wal_errors += 1

    def persistence_stats(self) -> Optional[Dict[str, Any]]:
        """Counters of the durable-state layer (``None`` without one).

        Reports the log's append count, segment count and rejected appends,
        the coordinator-side plan-store counters, and the startup recovery
        summary (with the WAL report flattened to plain numbers) — the data
        behind the ``restart_recovery`` benchmark section.
        """
        if self._wal is None:
            return None
        recovery = None
        if self.recovery is not None:
            recovery = dict(self.recovery)
            recovery["wal"] = self.recovery["wal"].as_dict()
        return {
            "wal_appends": self._wal.appended,
            "wal_segments": len(self._wal.segments),
            "wal_errors": self.wal_errors,
            "plan_store": self._plan_store.stats if self._plan_store else None,
            "recovery": recovery,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent, safe with dead workers).

        Workers that already died — crashed, SIGKILLed, or hung — must not
        make ``close()`` hang or raise: the sentinel is sent best-effort,
        joins are bounded and escalate ``terminate`` → ``kill``, every
        request queue's feeder thread is detached so interpreter shutdown
        cannot block on a pipe nobody reads, and the reply pipes are closed
        unconditionally.
        """
        if self._closed:
            return
        self._closed = True
        if self._tracer is not NULL_TRACER:
            try:
                self._tracer.close()
            except Exception:  # pragma: no cover - a full disk at teardown
                pass
            set_tracer(self._previous_tracer)
        if self._wal is not None:
            try:
                self._wal.close()
            except Exception:  # pragma: no cover - a full disk at teardown
                pass
        for worker_queue in self._queues:
            try:
                worker_queue.put_nowait(None)
            except Exception:  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            try:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
                if process.is_alive():  # pragma: no cover - defensive teardown
                    process.kill()
                    process.join(timeout=2.0)
            except Exception:  # pragma: no cover - teardown race
                pass
        for q in self._queues:
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - teardown race
                pass
        for reader in self._readers:
            try:
                if reader is not None:
                    reader.close()
            except Exception:  # pragma: no cover - teardown race
                pass

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("the service has been closed")

    # ------------------------------------------------------------------
    # instance management
    # ------------------------------------------------------------------
    def register_instance(
        self, instance: ProbabilisticGraph, instance_id: Optional[str] = None
    ) -> str:
        """Register an instance with its owning worker; returns its id.

        Registering the same *object* again returns the existing id;
        registering a different object under an existing id replaces it (on
        the same worker — ownership is a pure function of the id).
        """
        self._check_open()
        if not isinstance(instance, ProbabilisticGraph):
            raise ServiceError(
                f"expected a ProbabilisticGraph, got {type(instance).__name__}"
            )
        known = self._ids_by_identity.get(id(instance))
        if (
            known is not None
            # Guard against id() recycling: the mapping only counts if this
            # object really is the one registered under that id.
            and self._instances.get(known) is instance
            and instance_id in (None, known)
        ):
            return known
        if instance_id is None:
            instance_id = f"instance-{next(self._next_instance)}"
        replaced = self._instances.get(instance_id)
        if replaced is not None:
            self._ids_by_identity.pop(id(replaced), None)
        self._instances[instance_id] = instance
        self._ids_by_identity[id(instance)] = instance_id
        snapshot = pickle.dumps(instance)
        # The worker unpickles the snapshot bytes itself — one serialization
        # total (the old path materialised a copy only for the queue to
        # pickle it again), and in both deployment shapes the worker holds
        # its own instance, so a direct mutation of the caller's object
        # cannot desynchronise the worker's result cache (go through
        # update_probability, as with a real pool).
        self._call(self._worker_for(instance_id), "register", (instance_id, snapshot))
        # A replaced instance invalidates any stolen replicas of its id.
        self._replicas.pop(instance_id, None)
        # Journal the acknowledged registration: the snapshot is the state
        # the worker holds *now*, so replaying it (plus later journaled
        # updates) reconstructs the shard exactly on a respawned worker.
        previous = self._journal.get(instance_id)
        self._journal[instance_id] = _InstanceJournal(
            snapshot=snapshot,
            version=(previous.version + 1) if previous is not None else 0,
        )
        self._wal_append(("register", instance_id, snapshot))
        return instance_id

    def _worker_for(self, instance_id: str) -> int:
        """The instance's owning worker: least-loaded at first sight, stable after.

        The assignment is made on the id's first appearance — to the worker
        owning the fewest instances, lowest index on ties — and never moves,
        so K instances always spread over ``min(K, num_workers)`` workers
        (the bare ``crc32 % num_workers`` shard this replaces could collide
        every hot instance onto one worker, leaving the rest of the pool
        idle) while an instance's plan and result caches stay warm on one
        worker for its whole lifetime.
        """
        if self.num_workers == 0:
            return 0
        worker = self._assignment.get(instance_id)
        if worker is None:
            loads = [0] * self.num_workers
            for assigned in self._assignment.values():
                loads[assigned] += 1
            worker = min(range(self.num_workers), key=lambda w: (loads[w], w))
            self._assignment[instance_id] = worker
        return worker

    def _resolve_instance_id(self, instance: Union[str, ProbabilisticGraph]) -> str:
        if isinstance(instance, str):
            if instance not in self._instances:
                raise ServiceError(f"instance {instance!r} is not registered")
            return instance
        if isinstance(instance, ProbabilisticGraph):
            return self.register_instance(instance)
        raise ServiceError(
            f"cannot interpret {type(instance).__name__} as an instance or id"
        )

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Union[DiGraph, str],
        instance: Union[str, ProbabilisticGraph],
        *,
        method: str = "auto",
        precision: Optional[str] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        seed: Optional[int] = None,
        request_id: Optional[str] = None,
        deadline_ms: Optional[float] = None,
        on_deadline: str = "error",
    ) -> ServiceResult:
        """Answer one request (a convenience wrapper over :meth:`submit_many`).

        ``query`` is a graph or a query-language string such as
        ``"R(x, y), S(y, z)"`` (parsed by :mod:`repro.query`).
        """
        request = ServiceRequest(
            query=query,
            instance_id=self._resolve_instance_id(instance),
            method=method,
            precision=precision,
            epsilon=epsilon,
            delta=delta,
            seed=seed,
            request_id=request_id,
            deadline_ms=deadline_ms,
            on_deadline=on_deadline,
        )
        return self.submit_many([request])[0]

    def submit_many(
        self, requests: Sequence[RequestLike], *, on_error: str = "raise"
    ) -> List[ServiceResult]:
        """Answer a batch of requests; results come back in request order.

        Entries are :class:`ServiceRequest` objects or ``(query, instance)``
        pairs (the instance given as a registered id or the instance object
        itself, which is auto-registered).  Duplicates — equal coalesce keys
        — are computed once and fanned back out; distinct computations are
        sharded to their instances' owning workers and run in parallel.

        ``on_error="raise"`` (default) raises :class:`ServiceError` naming
        the failed request(s); ``on_error="return"`` instead returns a
        :class:`ServiceResult` with ``error`` set for the failed positions,
        keeping the successfully computed answers of the rest of the batch.
        """
        if on_error not in ("raise", "return"):
            raise ServiceError(f"unknown on_error mode {on_error!r}")
        self._check_open()
        start = time.perf_counter()
        try:
            with self._tracer.span("service.submit_many") as root:
                if root:
                    root.attrs["requests"] = len(requests)
                return self._submit_batch(requests, on_error, root)
        finally:
            self._batch_latency.observe((time.perf_counter() - start) * 1000.0)

    def _submit_batch(
        self,
        requests: Sequence[RequestLike],
        on_error: str,
        root: Any,
    ) -> List[ServiceResult]:
        """The body of :meth:`submit_many`, run under its root span."""
        normalized: List[Optional[ServiceRequest]] = []
        answered: Dict[int, Tuple[ServiceResult, str]] = {}
        for position, entry in enumerate(requests):
            try:
                normalized.append(self._normalize(entry))
            except ServiceError as exc:
                if on_error == "raise":
                    raise
                # A request that cannot even be normalised (unknown instance,
                # bad entry shape) becomes an error outcome in place.
                normalized.append(None)
                request_id = (
                    entry.request_id if isinstance(entry, ServiceRequest) else None
                )
                answered[position] = (
                    ServiceResult(
                        result=None,
                        request_id=request_id,
                        error=str(exc),
                        error_class=type(exc).__name__,
                    ),
                    str(exc),
                )
        # Entries that failed normalization never reach a worker; counting
        # them as requests would inflate dedupe_hit_rate's denominator.
        rejected = sum(1 for request in normalized if request is None)
        self._counters["requests"].inc(len(normalized) - rejected)
        self._counters["rejected"].inc(rejected)
        self._counters["batches"].inc()
        if not normalized:
            return []

        # Coalesce duplicates before dispatch.
        representative: Dict[Hashable, int] = {}
        unique_indices: List[int] = []
        source_of: List[int] = []
        key_of: Dict[int, Hashable] = {}
        for position, request in enumerate(normalized):
            if request is None:
                source_of.append(position)
                continue
            key = request.coalesce_key(self.default_precision)
            first = representative.get(key)
            if first is None:
                representative[key] = position
                unique_indices.append(position)
                source_of.append(position)
                key_of[position] = key
            else:
                source_of.append(first)
        # ``dispatched`` is counted per worker at actual dispatch time (after
        # stealing), so the pool total is structurally the sum of the
        # per-worker rows in :meth:`stats`.

        # Shard the distinct requests by instance affinity, then let idle
        # workers steal from lopsided shards.  Requests with a deadline
        # dispatch as single-request ops so each can be abandoned (and
        # degraded) on its own; unconstrained requests batch per worker —
        # one queue message per worker per call.
        by_worker: Dict[int, List[int]] = {}
        solo: List[int] = []
        for position in unique_indices:
            request = normalized[position]
            if request.deadline_ms is not None:
                solo.append(position)
            else:
                worker = self._worker_for(request.instance_id)
                by_worker.setdefault(worker, []).append(position)
        self._steal_balance(by_worker, normalized, key_of)

        histories: Dict[int, Tuple[str, ...]] = {}
        requalify: set = set()
        if self._inline is not None:
            for worker, positions in by_worker.items():
                payload = [normalized[p] for p in positions]
                self._dispatched.labels(worker).inc(len(positions))
                self._inline_fire()
                reply = handle_message(self._inline, "solve", payload)
                self._consume_solve(reply, worker, positions, normalized, answered)
            for position in solo:
                self._dispatched.labels(0).inc()
                self._solve_inline_solo(position, normalized, answered)
        else:
            root_context = (
                (root.trace_id, root.span_id) if isinstance(root, Span) else None
            )
            ops: Dict[int, _PendingOp] = {}
            op_positions: Dict[int, List[int]] = {}
            for worker, positions in by_worker.items():
                frames = [
                    self._request_frame(normalized[p], key_of[p], p, requalify)
                    for p in positions
                ]
                self._dispatched.labels(worker).inc(len(positions))
                op = self._dispatch_op(
                    worker,
                    frames,
                    root_context,
                    instance_ids=tuple(
                        dict.fromkeys(normalized[p].instance_id for p in positions)
                    ),
                )
                ops[op.op_id] = op
                op_positions[op.op_id] = positions
            start = time.monotonic()
            for position in solo:
                request = normalized[position]
                worker = self._worker_for(request.instance_id)
                self._dispatched.labels(worker).inc()
                op = self._dispatch_op(
                    worker,
                    [request],
                    root_context,
                    deadline=start + request.deadline_ms / 1000.0,
                    instance_ids=(request.instance_id,),
                )
                ops[op.op_id] = op
                op_positions[op.op_id] = [position]
            for op_id, outcome in self._supervise(ops).items():
                positions = op_positions[op_id]
                if outcome[0] == "reply":
                    _, worker, reply, attempts = outcome
                    self._consume_solve(
                        reply,
                        worker,
                        positions,
                        normalized,
                        answered,
                        attempts,
                        requalify,
                    )
                elif outcome[0] == "timeout":
                    _, elapsed_ms, attempts = outcome
                    (position,) = positions
                    self._apply_deadline(
                        position, normalized[position], elapsed_ms, attempts, answered
                    )
                else:  # "unavailable"
                    _, history = outcome
                    message = (
                        f"request could not be answered after "
                        f"{len(history)} attempt(s)"
                    )
                    for position in positions:
                        histories[position] = tuple(history)
                        answered[position] = (
                            ServiceResult(
                                result=None,
                                request_id=normalized[position].request_id,
                                error=message,
                                error_class="ServiceUnavailableError",
                                attempts=len(history),
                            ),
                            message,
                        )

        failures = [
            (p, answered[p][0], message)
            for p, (_, message) in sorted(answered.items())
            if message
        ]
        if failures and on_error == "raise":
            self._raise_failures(failures, histories)

        results: List[ServiceResult] = []
        for position, source in enumerate(source_of):
            base, message = answered[source]
            request = normalized[position]
            request_id = request.request_id if request is not None else base.request_id
            if base.result is None or source == position:
                results.append(replace(base, request_id=request_id))
            else:
                # The coalesced duplicate shares the computation but gets
                # its own spelling's query class / minimization provenance
                # (provenance only for auto requests — explicit methods
                # never minimize and their keys never merge spellings).
                copied = replace(base.result)
                if request is not None:
                    copied = requalify_result(
                        copied, request.query, minimize=request.method == "auto"
                    )
                results.append(
                    replace(
                        base,
                        result=copied,
                        request_id=request_id,
                        coalesced=True,
                    )
                )
        return results

    def _normalize(self, entry: RequestLike) -> ServiceRequest:
        if isinstance(entry, ServiceRequest):
            if entry.instance_id not in self._instances:
                raise ServiceError(
                    f"instance {entry.instance_id!r} is not registered"
                )
            request = entry
        elif isinstance(entry, tuple) and len(entry) == 2:
            query, instance = entry
            request = ServiceRequest(
                query=query, instance_id=self._resolve_instance_id(instance)
            )
        else:
            raise ServiceError(
                "submit_many entries must be ServiceRequest objects or "
                "(query, instance) pairs"
            )
        # Resolve the service-level sampling defaults into the request, so
        # coalesce keys, cacheability and the worker all see one concrete
        # (ε, δ, seed) contract.
        if request.epsilon is None or request.delta is None or request.seed is None:
            request = replace(
                request,
                epsilon=(
                    request.epsilon if request.epsilon is not None
                    else self.default_epsilon
                ),
                delta=request.delta if request.delta is not None else self.default_delta,
                seed=request.seed if request.seed is not None else self.default_seed,
            )
        return request

    def _steal_balance(
        self,
        by_worker: Dict[int, List[int]],
        normalized: List[Optional[ServiceRequest]],
        key_of: Dict[int, Hashable],
    ) -> None:
        """Per-batch work stealing: rebalance lopsided shard queues in place.

        Balance is measured in *cold* requests — coalesce keys never
        dispatched before (absent from the frame cache).  A previously
        dispatched key is almost certainly a result-cache hit on its owner,
        so moving it to another worker re-runs a computation the pool
        already has; only genuinely new work is worth shipping.  While the
        busiest worker's cold count exceeds the idlest worker's total queue
        by at least ``STEAL_IMBALANCE``, one cold request moves to the idle
        worker — preferring one whose instance already has a warm replica
        there, otherwise taking from the tail.  The first steal of an
        instance onto a worker ships the instance's journal state ahead of
        the batch (:meth:`_ensure_replica`); the queue is FIFO, so the
        replica is installed before the stolen request runs.  Coalescing
        already guaranteed the moved requests are independent computations.
        """
        if self.num_workers <= 1 or not self.work_stealing:
            return
        cold: Dict[int, List[int]] = {w: [] for w in range(self.num_workers)}
        loads = {w: len(by_worker.get(w, ())) for w in range(self.num_workers)}
        for worker, positions in by_worker.items():
            for position in positions:
                if key_of[position] not in self._frame_cache:
                    cold[worker].append(position)
        while True:
            busiest = max(cold, key=lambda w: (len(cold[w]), -w))
            idlest = min(loads, key=lambda w: (loads[w], w))
            if len(cold[busiest]) - loads[idlest] < STEAL_IMBALANCE:
                return
            candidates = cold[busiest]
            pick = len(candidates) - 1
            for i in range(len(candidates) - 1, -1, -1):
                iid = normalized[candidates[i]].instance_id
                if idlest in self._replicas.get(iid, ()):
                    pick = i
                    break
            position = candidates.pop(pick)
            by_worker[busiest].remove(position)
            self._ensure_replica(idlest, normalized[position].instance_id)
            by_worker.setdefault(idlest, []).append(position)
            self._counters["steals"].inc()
            loads[busiest] -= 1
            loads[idlest] += 1

    def _ensure_replica(self, worker: int, instance_id: str) -> None:
        """Ship an instance's journal state to a non-owner worker, once.

        The replica is soft state: re-shipped only after
        :meth:`update_probability` invalidates it or a restart drops the
        holding worker, and sent fire-and-forget (tracked in
        ``_background``) so stealing never blocks on the install ack.
        """
        if worker == self._worker_for(instance_id):
            return
        holders = self._replicas.setdefault(instance_id, set())
        if worker in holders:
            return
        journal = self._journal.get(instance_id)
        if journal is None:  # pragma: no cover - registration always journals
            return
        op_id = self._send(
            worker,
            "register",
            (instance_id, journal.snapshot, tuple(journal.updates.items())),
        )
        self._background[op_id] = worker
        holders.add(worker)
        self._counters["replicas_shipped"].inc()

    def _request_frame(
        self,
        request: ServiceRequest,
        key: Hashable,
        position: int,
        requalify: set,
    ) -> bytes:
        """The pickled dispatch frame for one request, cached by coalesce key.

        Hot queries on a skewed trace are re-submitted every tick, and
        pickling their query graphs per dispatch dominates the coordinator
        once the worker caches answer everything else; the frame bytes are
        therefore LRU-cached on the coalesce key (every answer-affecting
        field is folded into that key, and workers never read
        ``request_id`` — answers map back by position).  A cached frame may
        carry an *equivalent spelling* of this position's query (coalesce
        keys merge isomorphic spellings); such positions are added to
        ``requalify`` so :meth:`_consume_solve` re-describes the answer for
        the spelling actually submitted.
        """
        cached = self._frame_cache.get(key)
        if cached is not None:
            self._frame_cache.move_to_end(key)
            frame, source_query = cached
            if source_query is not request.query:
                requalify.add(position)
            return frame
        frame = pickle.dumps(request, protocol=pickle.HIGHEST_PROTOCOL)
        self._frame_cache[key] = (frame, request.query)
        while len(self._frame_cache) > FRAME_CACHE_LIMIT:
            self._frame_cache.popitem(last=False)
        return frame

    def _consume_solve(
        self,
        reply: Tuple[str, Any],
        worker: int,
        positions: List[int],
        normalized: List[ServiceRequest],
        answered: Dict[int, Tuple[ServiceResult, str]],
        attempts: int = 1,
        requalify: Optional[set] = None,
    ) -> None:
        status, value = reply
        if status != "ok":
            raise ServiceError(f"worker {worker} failed a solve batch: {value}")
        if len(value) != len(positions):  # pragma: no cover - protocol guard
            raise ServiceError(
                f"worker {worker} answered {len(value)} of {len(positions)} requests"
            )
        for position, outcome in zip(positions, value):
            request = normalized[position]
            if outcome[0] == "ok":
                # Workers answer ("ok", result, cached, duration_ms, timing);
                # the short 3-tuple form is tolerated for robustness.
                _, result, cached = outcome[:3]
                duration_ms = outcome[3] if len(outcome) > 3 else None
                timing = outcome[4] if len(outcome) > 4 else None
                if requalify and position in requalify:
                    # The dispatch frame carried an equivalent spelling;
                    # re-describe the answer for the one actually asked.
                    result = requalify_result(
                        result, request.query, minimize=request.method == "auto"
                    )
                stolen = worker != self._worker_for(request.instance_id)
                answered[position] = (
                    ServiceResult(
                        result=result,
                        request_id=request.request_id,
                        worker=worker,
                        cached=cached,
                        stolen=stolen,
                        attempts=attempts,
                        duration_ms=duration_ms,
                        timing=timing,
                    ),
                    "",
                )
                if (
                    self.slow_query_ms is not None
                    and duration_ms is not None
                    and duration_ms >= self.slow_query_ms
                ):
                    self._record_slow_query(
                        request, result, worker, duration_ms, cached, stolen,
                        attempts,
                    )
            else:
                message = outcome[1]
                # Worker errors are formatted "ExceptionType: detail".
                error_class = message.split(":", 1)[0] if ":" in message else None
                answered[position] = (
                    ServiceResult(
                        result=None,
                        request_id=normalized[position].request_id,
                        worker=worker,
                        error=message,
                        error_class=error_class,
                        attempts=attempts,
                    ),
                    message,
                )

    def _record_slow_query(
        self,
        request: ServiceRequest,
        result: PHomResult,
        worker: int,
        duration_ms: float,
        cached: bool,
        stolen: bool,
        attempts: int,
    ) -> None:
        """Append one slow-request record (bounded, newest last).

        The record carries the dispatch provenance an operator needs to see
        *why* the request was slow — which worker ran it, whether it was
        stolen or retried, and which dichotomy route answered it.
        """
        self.slow_queries.append(
            {
                "request_id": request.request_id,
                "instance": request.instance_id,
                "method": result.method,
                "duration_ms": duration_ms,
                "worker": worker,
                "cached": cached,
                "stolen": stolen,
                "attempts": attempts,
            }
        )
        if len(self.slow_queries) > SLOW_QUERY_LOG_LIMIT:
            del self.slow_queries[: len(self.slow_queries) - SLOW_QUERY_LOG_LIMIT]

    def _raise_failures(
        self,
        failures: List[Tuple[int, ServiceResult, str]],
        histories: Dict[int, Tuple[str, ...]],
    ) -> None:
        """Raise the most specific error for a failed batch.

        Retry exhaustion outranks deadline misses outranks per-request
        errors, so callers catching the typed exceptions see the systemic
        problem first.  ``"partial"``-policy timeouts never reach here —
        they are recorded with an empty failure message by design.
        """
        for position, result, message in failures:
            if result.error_class == "ServiceUnavailableError":
                rid = result.request_id or f"#{position}"
                raise ServiceUnavailableError(
                    f"request {rid} unavailable: {message}",
                    notes=histories.get(position, ()),
                )
        for position, result, message in failures:
            if result.error_class == "DeadlineExceededError":
                rid = result.request_id or f"#{position}"
                raise DeadlineExceededError(f"request {rid}: {message}")
        details = "; ".join(
            f"{result.request_id or f'#{position}'}: {message}"
            for position, result, message in failures[:5]
        )
        raise ServiceError(f"{len(failures)} request(s) failed: {details}")

    def _apply_deadline(
        self,
        position: int,
        request: ServiceRequest,
        elapsed_ms: float,
        attempts: int,
        answered: Dict[int, Tuple[ServiceResult, str]],
    ) -> None:
        """Record the outcome of a missed deadline under the request policy."""
        self._counters["deadline_hits"].inc()
        if request.on_deadline == "degrade":
            degrade_start = time.perf_counter()
            result = self._degrade_request(request)
            self._counters["degraded"].inc()
            answered[position] = (
                ServiceResult(
                    result=result,
                    request_id=request.request_id,
                    worker=-1,  # answered by the coordinator's degrade tier
                    attempts=attempts,
                    degraded=True,
                    duration_ms=(time.perf_counter() - degrade_start) * 1000.0,
                ),
                "",
            )
            return
        message = (
            f"deadline of {request.deadline_ms:g} ms exceeded "
            f"after {elapsed_ms:.0f} ms"
        )
        outcome = ServiceResult(
            result=None,
            request_id=request.request_id,
            error=message,
            error_class="DeadlineExceededError",
            attempts=attempts,
            timed_out=True,
        )
        if request.on_deadline == "partial":
            # Typed timeout in place, never raising: the batch's completed
            # answers stay usable (the empty message opts out of raising).
            answered[position] = (outcome, "")
        else:
            answered[position] = (outcome, message)

    def _degrade_request(self, request: ServiceRequest) -> PHomResult:
        """Answer a deadline-missed request through the approximate tier.

        Runs coordinator-side on the journal-reconstructed instance (the
        stuck worker may be wedged), with an epsilon chosen from the
        request's budget by :func:`~repro.service.faults.epsilon_for_budget`
        and the request's ``(δ, seed)`` contract, so a pinned seed keeps
        even the degraded answer reproducible.
        """
        instance = self._journal_instance(request.instance_id)
        if self._degrade_solver is None:
            self._degrade_solver = self._make_solver()
        solver = self._degrade_solver
        eps = epsilon_for_budget(request.deadline_ms)
        saved = solver.approx_params
        solver.approx_params = ApproxParams(
            epsilon=eps,
            delta=request.delta if request.delta is not None else saved.delta,
            seed=request.seed if request.seed is not None else saved.seed,
        )
        method = (
            request.method
            if request.method in PHomSolver.SAMPLING_METHODS
            else "auto"
        )
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = solver.solve(
                    request.query, instance, method=method, precision="approx"
                )
        finally:
            solver.approx_params = saved
        provenance = (
            f"degraded=True; original_method={request.method}; "
            f"deadline_ms={request.deadline_ms:g}; epsilon={eps:g}"
        )
        result.notes = (
            f"{result.notes}; {provenance}" if result.notes else provenance
        )
        return result

    def _journal_instance(self, instance_id: str) -> ProbabilisticGraph:
        """The worker-view instance, rebuilt from the journal (memoised)."""
        journal = self._journal.get(instance_id)
        if journal is None:
            raise ServiceError(f"instance {instance_id!r} has no journal entry")
        memo = self._degrade_memo.get(instance_id)
        if memo is not None and memo[0] == journal.version:
            return memo[1]
        instance = pickle.loads(journal.snapshot)
        for endpoints, probability in journal.updates.items():
            instance.set_probability(endpoints, probability)
        self._degrade_memo[instance_id] = (journal.version, instance)
        return instance

    def _solve_inline_solo(
        self,
        position: int,
        normalized: List[ServiceRequest],
        answered: Dict[int, Tuple[ServiceResult, str]],
    ) -> None:
        """Inline-mode deadline handling: solve, then apply the policy.

        Without a worker process there is nothing to preempt, so the
        deadline is enforced *post hoc* — the answer is computed, its
        elapsed time measured, and a miss is handled exactly like the pool
        would (error / degrade / partial), keeping the two deployment
        shapes semantically identical.
        """
        request = normalized[position]
        start = time.monotonic()
        self._inline_fire()
        reply = handle_message(self._inline, "solve", [request])
        elapsed_ms = (time.monotonic() - start) * 1000.0
        if elapsed_ms > request.deadline_ms:
            self._apply_deadline(position, request, elapsed_ms, 1, answered)
        else:
            self._consume_solve(reply, 0, [position], normalized, answered)

    def _inline_fire(self) -> None:
        """Apply inline-honoured faults (delay) before an inline message."""
        injector = self._inline.fault_injector
        if injector is None:
            return
        for fault in injector.on_message():
            if fault.kind == "delay":
                time.sleep(fault.seconds)
            # kill / drop / corrupt are process-boundary faults with no
            # inline analogue; solver-error is consumed inside solve_batch.

    # ------------------------------------------------------------------
    # updates and stats
    # ------------------------------------------------------------------
    def update_probability(
        self,
        instance: Union[str, ProbabilisticGraph],
        edge,
        probability,
    ) -> None:
        """Set one edge's probability on the owning worker's shard.

        The caller's registered instance object is updated too, so the local
        and worker-side views stay numerically identical; compiled plans on
        the worker survive (they read the live table) while its cached
        results for this instance are invalidated.
        """
        self._check_open()
        instance_id = self._resolve_instance_id(instance)
        local = self._instances[instance_id]
        if isinstance(edge, Edge):
            endpoints = (edge.source, edge.target)
        elif isinstance(edge, tuple) and len(edge) == 2:
            endpoints = edge
        else:
            raise ServiceError(f"cannot interpret {edge!r} as an edge")
        # Validate (and normalise) locally first: a bad update must fail
        # without desynchronising the worker copy.
        local.set_probability(endpoints, probability)
        self._counters["updates"].inc()
        self._call(
            self._worker_for(instance_id),
            "update",
            (instance_id, endpoints, probability),
        )
        # Replicas are soft state: invalidate them so the next steal of this
        # instance re-ships the updated journal instead of answering from a
        # stale copy (the re-shipped register also drops the thief's cached
        # results for the instance).
        self._replicas.pop(instance_id, None)
        journal = self._journal.get(instance_id)
        if journal is not None:
            # Last-write-wins compaction: replay order only matters per
            # edge, so re-updating an edge moves it to the tail instead of
            # growing the journal without bound.
            journal.updates[endpoints] = probability
            journal.updates.move_to_end(endpoints)
            journal.version += 1
            if len(journal.updates) >= self.journal_update_limit:
                # Fold the accumulated updates into a fresh snapshot so the
                # in-memory journal stays bounded under sustained update
                # traffic against many distinct edges.  The folded state is
                # identical, so the version (the degrade-memo key) holds.
                folded = pickle.loads(journal.snapshot)
                for folded_endpoints, folded_probability in journal.updates.items():
                    folded.set_probability(folded_endpoints, folded_probability)
                journal.snapshot = pickle.dumps(folded)
                journal.updates.clear()
        self._wal_append(("update", instance_id, endpoints, probability))

    def evaluate_many(
        self,
        instance: Union[str, ProbabilisticGraph],
        query,
        batches,
        precision: Optional[str] = None,
        backend: str = "auto",
    ) -> List:
        """Batch-evaluate one query under many probability valuations.

        Dispatches to the owning worker's flat-tape fast path
        (:meth:`~repro.service.worker.WorkerState.evaluate_many`): the
        query's plan is compiled (or found in the worker's plan cache)
        once, lowered to a tape, and every valuation in ``batches`` is
        answered in a single vectorized structural pass.  Each batch entry
        is an override mapping keyed by edge endpoints (``None`` / ``{}``
        for the shard's live table); the returned list is index-aligned.
        ``precision`` defaults to the service's default precision —
        sampling ("approx") has no batched tape and is rejected.
        """
        self._check_open()
        instance_id = self._resolve_instance_id(instance)
        return self._call(
            self._worker_for(instance_id),
            "evaluate_many",
            (instance_id, query, list(batches), precision, backend),
        )

    def stats(self) -> ServiceStats:
        """Service-level coalescing counters plus per-worker statistics.

        Every number is read back from one snapshot of the coordinator's
        telemetry registry; in particular ``dispatched`` is the sum of the
        per-worker ``dispatched`` series injected into the worker rows, so
        the pool total and the rows cannot disagree — not under stealing,
        not across restarts.
        """
        self._check_open()
        if self._inline is not None:
            workers = [self._inline.stats()]
        else:
            ops: Dict[int, _PendingOp] = {}
            op_worker: Dict[int, int] = {}
            for worker in range(self.num_workers):
                op = self._make_op(worker, "stats", None)
                ops[op.op_id] = op
                op_worker[op.op_id] = worker
            ordered: Dict[int, Dict[str, Any]] = {}
            for op_id, outcome in self._supervise(ops).items():
                worker = op_worker[op_id]
                if outcome[0] == "unavailable":
                    raise ServiceUnavailableError(
                        f"stats on worker {worker} exhausted its retry budget",
                        notes=outcome[1],
                    )
                _, _, (status, value), _ = outcome
                if status != "ok":  # pragma: no cover - protocol guard
                    raise ServiceError(f"worker {worker} failed stats: {value}")
                ordered[worker] = value
            workers = [ordered[index] for index in sorted(ordered)]
        snapshot = self.metrics.snapshot()
        totals = {
            name: int(counter_total(snapshot, f"repro_service_{name}_total"))
            for name, _ in _SERVICE_COUNTERS
        }
        for row in workers:
            row["dispatched"] = int(
                counter_value(
                    snapshot,
                    "repro_service_dispatched_total",
                    (str(row["worker"]),),
                )
            )
        dispatched = int(
            counter_total(snapshot, "repro_service_dispatched_total")
        )
        return ServiceStats(
            requests=totals["requests"],
            rejected=totals["rejected"],
            dispatched=dispatched,
            coalesced=totals["requests"] - dispatched,
            batches=totals["batches"],
            updates=totals["updates"],
            restarts=totals["restarts"],
            retries=totals["retries"],
            deadline_hits=totals["deadline_hits"],
            degraded=totals["degraded"],
            steals=totals["steals"],
            replicas_shipped=totals["replicas_shipped"],
            workers=workers,
        )

    def metrics_snapshot(self) -> Dict[str, Any]:
        """One pool-wide telemetry snapshot (coordinator + every worker).

        Merges the coordinator registry with each worker's registry
        snapshot (shipped inside the worker's ``stats`` reply) via
        :func:`repro.obs.metrics.merge_snapshots`; the result is a plain
        JSON-able dictionary — the input of ``repro metrics`` and
        ``repro top``.
        """
        service_stats = self.stats()
        snapshots = [self.metrics.snapshot()]
        for row in service_stats.workers:
            worker_metrics = row.get("metrics")
            if worker_metrics:
                snapshots.append(worker_metrics)
        return merge_snapshots(snapshots)

    # ------------------------------------------------------------------
    # message plumbing and supervision
    # ------------------------------------------------------------------
    def _send(self, worker: int, op: str, payload: Any) -> int:
        op_id = next(self._next_op)
        self._queues[worker].put((op_id, op, payload))
        return op_id

    def _make_op(
        self,
        worker: int,
        op: str,
        payload: Any,
        deadline: Optional[float] = None,
        instance_ids: Tuple[str, ...] = (),
    ) -> _PendingOp:
        """Dispatch one op and return its supervision record."""
        now = time.monotonic()
        return _PendingOp(
            op_id=self._send(worker, op, payload),
            worker=worker,
            op=op,
            payload=payload,
            created_at=now,
            sent_at=now,
            deadline=deadline,
            instance_ids=instance_ids,
        )

    def _dispatch_op(
        self,
        worker: int,
        entries: List[Any],
        root_context: Optional[Tuple[str, str]],
        deadline: Optional[float] = None,
        instance_ids: Tuple[str, ...] = (),
    ) -> _PendingOp:
        """Dispatch one solve op, opening its per-attempt dispatch span.

        The solve payload is ``(entries, trace_context)``: the context is
        the *dispatch span's* id pair, so the worker's spans parent under
        the attempt that actually ran them — a retry opens a fresh span
        (fresh ids) and re-targets the payload, which is what keeps chaos
        traces free of orphaned or duplicated span ids.
        """
        context = None
        span: Optional[Span] = None
        if root_context is not None:
            span = self._tracer.start_span("service.dispatch", parent=root_context)
            span.attrs["worker"] = worker
            span.attrs["requests"] = len(entries)
            span.attrs["attempt"] = 1
            context = (span.trace_id, span.span_id)
        op = self._make_op(
            worker,
            "solve",
            (entries, context),
            deadline=deadline,
            instance_ids=instance_ids,
        )
        op.trace_parent = root_context
        if span is not None:
            self._op_spans[op.op_id] = span
        return op

    def _close_op_span(self, op_id: int, status: str, reason: str = "") -> None:
        """Close the current dispatch-attempt span of an op, if any."""
        span = self._op_spans.pop(op_id, None)
        if span is None:
            return
        if reason:
            span.attrs["reason"] = reason
        self._tracer.end(span, status)

    def _reopen_op_span(self, op: _PendingOp) -> None:
        """Open a fresh dispatch span for a retry and re-target its payload."""
        if op.trace_parent is None:
            return
        span = self._tracer.start_span("service.dispatch", parent=op.trace_parent)
        span.attrs["worker"] = op.worker
        span.attrs["attempt"] = op.attempts
        self._op_spans[op.op_id] = span
        if op.op == "solve" and isinstance(op.payload, tuple):
            op.payload = (op.payload[0], (span.trace_id, span.span_id))

    def _call(self, worker: int, op: str, payload: Any) -> Any:
        """Send one op and wait for its reply (inline mode short-circuits).

        Pool-mode calls run under full supervision: a worker dying or
        hanging mid-call is restarted and the op retried like any request.
        """
        if self._inline is not None:
            self._inline_fire()
            status, value = handle_message(self._inline, op, payload)
            if status != "ok":
                raise ServiceError(f"{op} failed: {value}")
            return value
        pending_op = self._make_op(worker, op, payload)
        outcome = self._supervise({pending_op.op_id: pending_op})[pending_op.op_id]
        if outcome[0] == "unavailable":
            raise ServiceUnavailableError(
                f"{op} on worker {worker} exhausted its retry budget",
                notes=outcome[1],
            )
        _, _, (status, value), _ = outcome
        if status != "ok":
            raise ServiceError(f"{op} failed on worker {worker}: {value}")
        return value

    def _supervise(
        self, pending: Dict[int, _PendingOp]
    ) -> Dict[int, Tuple[Any, ...]]:
        """Await every pending op under supervision; never hangs, never loses one.

        The loop interleaves four duties until the pending set drains:
        resend ops whose retry backoff expired, collect (and validate)
        replies, expire per-op deadlines, and detect dead or unresponsive
        workers — restarting them, replaying their journal, and scheduling
        their in-flight ops for retry.

        Outcomes, one per op:

        * ``("reply", worker, reply, attempts)`` — a well-formed reply;
        * ``("timeout", elapsed_ms, attempts)`` — the op's deadline expired
          (the op is abandoned; a late reply is discarded on arrival);
        * ``("unavailable", history)`` — the retry budget is exhausted,
          with one history line per failed attempt.
        """
        outcomes: Dict[int, Tuple[Any, ...]] = {}
        while pending:
            now = time.monotonic()
            for op in pending.values():
                if op.retry_at is not None and now >= op.retry_at:
                    # The worker was restarted (and its journal replayed)
                    # when the failure was detected; the queue is FIFO, so
                    # this resend lands after the replay ops.  Stolen
                    # instances are not part of that replay — re-ship their
                    # replicas ahead of the resend (the restart dropped the
                    # worker from every holder set, so this is a real send).
                    for instance_id in op.instance_ids:
                        self._ensure_replica(op.worker, instance_id)
                    op.retry_at = None
                    op.sent_at = now
                    self._reopen_op_span(op)
                    self._queues[op.worker].put((op.op_id, op.op, op.payload))
            for message in self._drain(self.poll_interval):
                if not (isinstance(message, tuple) and len(message) in (3, 4)):
                    continue  # pragma: no cover - unattributable corruption
                if len(message) == 4:
                    # Worker spans piggybacked on the reply frame: fold them
                    # into the coordinator's ring before the reply settles.
                    worker, op_id, reply, spans = message
                    if isinstance(spans, list):
                        self._tracer.ingest(spans)
                else:
                    worker, op_id, reply = message
                if not isinstance(op_id, int):
                    continue  # pragma: no cover - unattributable corruption
                if op_id in self._abandoned:
                    self._abandoned.pop(op_id, None)
                    continue
                if op_id in self._background:
                    self._background.pop(op_id, None)
                    continue
                op = pending.get(op_id)
                if op is None or op.retry_at is not None:
                    # A stale duplicate from a superseded attempt (or an op
                    # already failed over); the accepted answer stands.
                    continue
                if not self._valid_reply(reply):
                    self._fail_worker(
                        op.worker,
                        f"malformed reply frame ({type(reply).__name__})",
                        pending,
                        outcomes,
                    )
                    continue
                self._close_op_span(op_id, "ok")
                outcomes[op_id] = ("reply", worker, reply, op.attempts)
                del pending[op_id]
            now = time.monotonic()
            for op in list(pending.values()):
                if op.deadline is not None and now >= op.deadline:
                    if op.retry_at is None:
                        # Still in flight: the worker may answer later;
                        # remember to discard that late reply.
                        self._abandoned[op.op_id] = op.worker
                    self._close_op_span(op.op_id, "timeout")
                    outcomes[op.op_id] = (
                        "timeout",
                        (now - op.created_at) * 1000.0,
                        op.attempts,
                    )
                    del pending[op.op_id]
            broken: Dict[int, str] = {}
            for op in pending.values():
                if op.retry_at is not None:
                    continue
                process = self._processes[op.worker]
                if not process.is_alive():
                    broken[op.worker] = (
                        f"worker process died (exit code {process.exitcode})"
                    )
                elif now - op.sent_at > self.timeout:
                    broken.setdefault(
                        op.worker,
                        f"worker unresponsive ({now - op.sent_at:.2f}s without "
                        f"a reply, timeout {self.timeout:g}s)",
                    )
            for worker, reason in broken.items():
                self._fail_worker(worker, reason, pending, outcomes)
        return outcomes

    def _drain(self, wait: float) -> List[Any]:
        """One poll slice over the reply pipes, then a greedy drain.

        A pipe that hits EOF or breaks mid-frame (its worker died, possibly
        terminated mid-send) is closed and parked until the restart path
        replaces it; the in-flight reply it may have swallowed is exactly
        the one supervision retries.
        """
        readers = [r for r in self._readers if r is not None]
        if not readers:
            time.sleep(wait)
            return []
        messages: List[Any] = []
        for reader in multiprocessing.connection.wait(readers, timeout=wait):
            try:
                while reader.poll():
                    messages.append(reader.recv())
            except (EOFError, OSError, pickle.UnpicklingError):
                try:
                    reader.close()
                except Exception:  # pragma: no cover - teardown race
                    pass
                for index, known in enumerate(self._readers):
                    if known is reader:
                        self._readers[index] = None
        return messages

    @staticmethod
    def _valid_reply(reply: Any) -> bool:
        return (
            isinstance(reply, tuple)
            and len(reply) == 2
            and reply[0] in ("ok", "error")
        )

    def _fail_worker(
        self,
        worker: int,
        reason: str,
        pending: Dict[int, _PendingOp],
        outcomes: Dict[int, Tuple[Any, ...]],
    ) -> None:
        """Restart a broken worker and retry (or fail) its in-flight ops."""
        self._restart_worker(worker, reason)
        now = time.monotonic()
        for op in [
            o for o in pending.values() if o.worker == worker and o.retry_at is None
        ]:
            op.history.append(
                f"attempt {op.attempts} ({op.op} op {op.op_id}, "
                f"worker {worker}): {reason}"
            )
            # The attempt's in-flight work died with the worker: the
            # coordinator closes the dispatch span itself (the worker's own
            # spans were never sent), marking it ``"retried"`` — the
            # follow-up attempt opens a fresh span at resend time.
            self._close_op_span(op.op_id, "retried", reason=reason)
            if op.attempts > self.max_retries:
                outcomes[op.op_id] = ("unavailable", list(op.history))
                del pending[op.op_id]
            else:
                op.attempts += 1
                self._counters["retries"].inc()
                delay = min(
                    self.backoff_cap, self.backoff_base * 2 ** (op.attempts - 2)
                )
                delay *= 0.5 + 0.5 * self._backoff_rng.random()
                op.retry_at = now + delay

    def _restart_worker(self, worker: int, reason: str) -> None:
        """Respawn one worker and replay its shard from the journal.

        The old incarnation is terminated first (it may merely be hung), its
        request queue is replaced — undelivered messages on it are exactly
        the in-flight ops the caller retries — and every instance the shard
        owns is re-registered from its journal snapshot plus compacted
        updates, as fire-and-forget ops that precede any retried request in
        the new queue's FIFO order.
        """
        started = time.monotonic()
        process = self._processes[worker]
        if process.is_alive():
            process.terminate()
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - stuck in a syscall
                process.kill()
                process.join(timeout=5.0)
        old_queue = self._queues[worker]
        try:
            old_queue.close()
            old_queue.cancel_join_thread()
        except Exception:  # pragma: no cover - teardown race
            pass
        old_reader = self._readers[worker]
        if old_reader is not None:
            # Anything still buffered (including a partial frame from a
            # terminate-mid-send) dies with the pipe; _spawn_worker installs
            # the fresh incarnation's reader.
            try:
                old_reader.close()
            except Exception:  # pragma: no cover - teardown race
                pass
            self._readers[worker] = None
        # Replies from the dead incarnation can never arrive now; prune the
        # discard sets so they do not grow across restarts.
        self._abandoned = {i: w for i, w in self._abandoned.items() if w != worker}
        self._background = {i: w for i, w in self._background.items() if w != worker}
        self._incarnations[worker] += 1
        self._queues[worker] = self._context.Queue()
        self._processes[worker] = self._spawn_worker(worker)
        # Any stolen replicas died with the old incarnation; forget them so
        # the next steal (or a retried op naming them) re-ships fresh state.
        for holders in self._replicas.values():
            holders.discard(worker)
        replayed = 0
        for instance_id, journal in self._journal.items():
            if self._worker_for(instance_id) != worker:
                continue
            # The journal bytes cross the queue untouched; the fresh
            # incarnation unpickles the snapshot and folds the updates.
            op_id = self._send(
                worker,
                "register",
                (instance_id, journal.snapshot, tuple(journal.updates.items())),
            )
            self._background[op_id] = worker
            if self._plan_store is not None:
                # Fire-and-forget warm-up: the respawned incarnation loads
                # the shard's stored plans off the request path instead of
                # recompiling them on first use.
                warm_id = self._send(worker, "warm", instance_id)
                self._background[warm_id] = worker
            replayed += 1
        self._counters["restarts"].inc()
        self.restart_log.append(
            {
                "worker": worker,
                "incarnation": self._incarnations[worker],
                "reason": reason,
                "duration_s": time.monotonic() - started,
                "instances_replayed": replayed,
            }
        )
        if len(self.restart_log) > RESTART_LOG_LIMIT:
            # A worker stuck in a crash loop must not grow the log without
            # bound; the totals survive in the service counters.
            del self.restart_log[: len(self.restart_log) - RESTART_LOG_LIMIT]
