"""The parallel query-serving layer: :class:`QueryService`.

``QueryService`` turns the single-process solving stack — batch solving
(:meth:`~repro.core.solver.PHomSolver.solve_many`), compiled plans
(:mod:`repro.plan`) and the ``(ε, δ)`` samplers (:mod:`repro.approx`) — into
one servable system:

* **Instance-affinity sharding.**  Every registered instance is owned by
  exactly one worker process (stable hash of its id), so that worker's
  frozen instance graph, memoised metadata and compiled-plan cache stay warm
  across the whole request stream instead of being rebuilt per batch.
* **Request coalescing.**  Duplicate requests — same instance, same
  canonical query form (:func:`repro.plan.canonical_query_key`), same
  options — are detected *before* dispatch; each distinct computation runs
  once per batch and its duplicates receive copies, extending the
  ``solve_many`` dedupe across instances and worker boundaries.  Worker-side
  result caches additionally answer repeats across batches without
  re-running even the arithmetic (until an update invalidates them).
* **Mixed precision per request.**  Every request chooses ``exact`` /
  ``float`` / ``approx`` independently; sampled answers carry their
  ``(ε, δ, seed)`` contract, and a pinned seed reproduces the estimate bit
  for bit no matter which worker runs it.
* **Live updates.**  :meth:`QueryService.update_probability` applies a
  single-edge probability change on the owning worker (and on the caller's
  registered instance object, keeping both views consistent); compiled plans
  survive — they capture structure only — while stale cached results are
  dropped.

``num_workers=0`` runs the identical serving logic inline (no processes),
which is the zero-overhead mode for tests, small workloads and single-core
machines.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import queue as queue_module
import zlib
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.solver import PHomSolver, requalify_result
from repro.exceptions import ServiceError
from repro.graphs.digraph import DiGraph, Edge
from repro.probability.prob_graph import ProbabilisticGraph
from repro.service.requests import ServiceRequest, ServiceResult
from repro.service.worker import WorkerState, handle_message, worker_loop

RequestLike = Union[ServiceRequest, Tuple[DiGraph, Any]]


@dataclass
class ServiceStats:
    """A snapshot of serving statistics.

    ``requests`` counts every request submitted; ``dispatched`` counts the
    distinct computations actually sent to workers after coalescing, so
    ``coalesced == requests - dispatched`` duplicates never crossed the
    dispatch boundary.  ``workers`` holds one per-worker dictionary with the
    worker's serving counters and its plan-cache statistics (hits, misses,
    compiles, evictions — see :attr:`repro.plan.PlanCache.stats`).
    """

    requests: int = 0
    dispatched: int = 0
    coalesced: int = 0
    batches: int = 0
    updates: int = 0
    workers: List[Dict[str, Any]] = field(default_factory=list)

    def dedupe_hit_rate(self) -> float:
        """Fraction of submitted requests answered by coalescing alone."""
        if self.requests == 0:
            return 0.0
        return self.coalesced / self.requests

    def result_cache_hits(self) -> int:
        """Total worker-side result-cache hits across the pool."""
        return sum(w.get("result_cache_hits", 0) for w in self.workers)


class QueryService:
    """A parallel, deduplicating front end over the PHom solving stack.

    Parameters
    ----------
    num_workers:
        Size of the worker-process pool.  ``0`` serves inline in the calling
        process (no subprocesses, same semantics); ``None`` picks
        ``min(4, cpu_count)``.
    default_precision:
        Precision applied to requests that do not choose one
        (``"exact"`` / ``"float"`` / ``"approx"``).
    allow_brute_force / prefer / plan_cache_size / epsilon / delta / seed:
        Forwarded to each worker's :class:`~repro.core.solver.PHomSolver`.
    result_cache_size:
        Capacity of each worker's result cache (``0`` disables result
        caching; coalescing within a batch still applies).
    start_method:
        Multiprocessing start method (``"fork"`` / ``"spawn"`` / ...);
        ``None`` picks ``fork`` where available, else the platform default.
    timeout:
        Seconds to wait for a worker reply before declaring the pool broken.
    """

    def __init__(
        self,
        num_workers: Optional[int] = None,
        *,
        default_precision: str = "exact",
        allow_brute_force: bool = True,
        prefer: str = "dp",
        plan_cache_size: int = 128,
        result_cache_size: int = 1024,
        epsilon: float = 0.05,
        delta: float = 0.01,
        seed: Optional[int] = None,
        start_method: Optional[str] = None,
        timeout: float = 300.0,
    ) -> None:
        if default_precision not in ("exact", "float", "approx"):
            raise ServiceError(
                f"unknown default precision {default_precision!r}"
            )
        if num_workers is None:
            num_workers = min(4, os.cpu_count() or 1)
        if num_workers < 0:
            raise ServiceError(f"num_workers must be >= 0, got {num_workers}")
        self.num_workers = num_workers
        self.default_precision = default_precision
        #: The service-level sampling contract, inherited by requests that
        #: leave epsilon / delta / seed unset.
        self.default_epsilon = epsilon
        self.default_delta = delta
        self.default_seed = seed
        self.timeout = timeout
        self._closed = False
        self._instances: Dict[str, ProbabilisticGraph] = {}
        self._ids_by_identity: Dict[int, str] = {}
        self._next_instance = itertools.count()
        self._next_op = itertools.count()
        self._stats_requests = 0
        self._stats_dispatched = 0
        self._stats_batches = 0
        self._stats_updates = 0

        def make_solver() -> PHomSolver:
            return PHomSolver(
                allow_brute_force=allow_brute_force,
                prefer=prefer,
                precision=default_precision,
                plan_cache_size=plan_cache_size,
                epsilon=epsilon,
                delta=delta,
                seed=seed,
            )

        if num_workers == 0:
            self._inline: Optional[WorkerState] = WorkerState(
                0, make_solver(), default_precision, result_cache_size
            )
            self._processes: List = []
            self._queues: List = []
            self._results = None
            return
        self._inline = None
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        context = multiprocessing.get_context(start_method)
        self._results = context.Queue()
        self._queues = [context.Queue() for _ in range(num_workers)]
        self._processes = []
        for index in range(num_workers):
            process = context.Process(
                target=worker_loop,
                args=(
                    index,
                    self._queues[index],
                    self._results,
                    make_solver(),
                    default_precision,
                    result_cache_size,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        self._replies: Dict[int, Tuple[int, Tuple[str, Any]]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker_queue in self._queues:
            try:
                worker_queue.put(None)
            except (OSError, ValueError):  # pragma: no cover - teardown race
                pass
        for process in self._processes:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - defensive teardown
                process.terminate()
                process.join(timeout=5.0)

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass

    def _check_open(self) -> None:
        if self._closed:
            raise ServiceError("the service has been closed")

    # ------------------------------------------------------------------
    # instance management
    # ------------------------------------------------------------------
    def register_instance(
        self, instance: ProbabilisticGraph, instance_id: Optional[str] = None
    ) -> str:
        """Register an instance with its owning worker; returns its id.

        Registering the same *object* again returns the existing id;
        registering a different object under an existing id replaces it (on
        the same worker — ownership is a pure function of the id).
        """
        self._check_open()
        if not isinstance(instance, ProbabilisticGraph):
            raise ServiceError(
                f"expected a ProbabilisticGraph, got {type(instance).__name__}"
            )
        known = self._ids_by_identity.get(id(instance))
        if (
            known is not None
            # Guard against id() recycling: the mapping only counts if this
            # object really is the one registered under that id.
            and self._instances.get(known) is instance
            and instance_id in (None, known)
        ):
            return known
        if instance_id is None:
            instance_id = f"instance-{next(self._next_instance)}"
        replaced = self._instances.get(instance_id)
        if replaced is not None:
            self._ids_by_identity.pop(id(replaced), None)
        self._instances[instance_id] = instance
        self._ids_by_identity[id(instance)] = instance_id
        shipped = instance
        if self._inline is not None:
            # Mirror the process-boundary copy semantics in inline mode: the
            # worker must hold its own instance, so a direct mutation of the
            # caller's object cannot desynchronise the worker's result cache
            # (go through update_probability, as with a real pool).
            shipped = pickle.loads(pickle.dumps(instance))
        self._call(self._worker_for(instance_id), "register", (instance_id, shipped))
        return instance_id

    def _worker_for(self, instance_id: str) -> int:
        """Stable instance-affinity shard: id bytes -> worker index."""
        if self.num_workers == 0:
            return 0
        return zlib.crc32(instance_id.encode("utf-8")) % self.num_workers

    def _resolve_instance_id(self, instance: Union[str, ProbabilisticGraph]) -> str:
        if isinstance(instance, str):
            if instance not in self._instances:
                raise ServiceError(f"instance {instance!r} is not registered")
            return instance
        if isinstance(instance, ProbabilisticGraph):
            return self.register_instance(instance)
        raise ServiceError(
            f"cannot interpret {type(instance).__name__} as an instance or id"
        )

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Union[DiGraph, str],
        instance: Union[str, ProbabilisticGraph],
        *,
        method: str = "auto",
        precision: Optional[str] = None,
        epsilon: Optional[float] = None,
        delta: Optional[float] = None,
        seed: Optional[int] = None,
        request_id: Optional[str] = None,
    ) -> ServiceResult:
        """Answer one request (a convenience wrapper over :meth:`submit_many`).

        ``query`` is a graph or a query-language string such as
        ``"R(x, y), S(y, z)"`` (parsed by :mod:`repro.query`).
        """
        request = ServiceRequest(
            query=query,
            instance_id=self._resolve_instance_id(instance),
            method=method,
            precision=precision,
            epsilon=epsilon,
            delta=delta,
            seed=seed,
            request_id=request_id,
        )
        return self.submit_many([request])[0]

    def submit_many(
        self, requests: Sequence[RequestLike], *, on_error: str = "raise"
    ) -> List[ServiceResult]:
        """Answer a batch of requests; results come back in request order.

        Entries are :class:`ServiceRequest` objects or ``(query, instance)``
        pairs (the instance given as a registered id or the instance object
        itself, which is auto-registered).  Duplicates — equal coalesce keys
        — are computed once and fanned back out; distinct computations are
        sharded to their instances' owning workers and run in parallel.

        ``on_error="raise"`` (default) raises :class:`ServiceError` naming
        the failed request(s); ``on_error="return"`` instead returns a
        :class:`ServiceResult` with ``error`` set for the failed positions,
        keeping the successfully computed answers of the rest of the batch.
        """
        if on_error not in ("raise", "return"):
            raise ServiceError(f"unknown on_error mode {on_error!r}")
        self._check_open()
        normalized: List[Optional[ServiceRequest]] = []
        answered: Dict[int, Tuple[ServiceResult, str]] = {}
        for position, entry in enumerate(requests):
            try:
                normalized.append(self._normalize(entry))
            except ServiceError as exc:
                if on_error == "raise":
                    raise
                # A request that cannot even be normalised (unknown instance,
                # bad entry shape) becomes an error outcome in place.
                normalized.append(None)
                request_id = (
                    entry.request_id if isinstance(entry, ServiceRequest) else None
                )
                answered[position] = (
                    ServiceResult(result=None, request_id=request_id, error=str(exc)),
                    str(exc),
                )
        self._stats_requests += len(normalized)
        self._stats_batches += 1
        if not normalized:
            return []

        # Coalesce duplicates before dispatch.
        representative: Dict[Hashable, int] = {}
        unique_indices: List[int] = []
        source_of: List[int] = []
        for position, request in enumerate(normalized):
            if request is None:
                source_of.append(position)
                continue
            key = request.coalesce_key(self.default_precision)
            first = representative.get(key)
            if first is None:
                representative[key] = position
                unique_indices.append(position)
                source_of.append(position)
            else:
                source_of.append(first)
        self._stats_dispatched += len(unique_indices)

        # Shard the distinct requests by instance affinity.
        by_worker: Dict[int, List[int]] = {}
        for position in unique_indices:
            worker = self._worker_for(normalized[position].instance_id)
            by_worker.setdefault(worker, []).append(position)

        op_ids: Dict[int, int] = {}
        for worker, positions in by_worker.items():
            payload = [normalized[p] for p in positions]
            if self._inline is not None:
                reply = handle_message(self._inline, "solve", payload)
                self._consume_solve(reply, worker, positions, normalized, answered)
            else:
                op_ids[self._send(worker, "solve", payload)] = worker
        if op_ids:
            for op_id, (worker, reply) in self._await(set(op_ids)).items():
                positions = by_worker[op_ids[op_id]]
                self._consume_solve(reply, worker, positions, normalized, answered)

        failures = [
            (answered[p][0].request_id or f"#{p}", message)
            for p, (_, message) in sorted(answered.items())
            if message
        ]
        if failures and on_error == "raise":
            details = "; ".join(f"{rid}: {msg}" for rid, msg in failures[:5])
            raise ServiceError(
                f"{len(failures)} request(s) failed: {details}"
            )

        results: List[ServiceResult] = []
        for position, source in enumerate(source_of):
            base, message = answered[source]
            request = normalized[position]
            request_id = request.request_id if request is not None else base.request_id
            if message or source == position:
                results.append(replace(base, request_id=request_id))
            else:
                # The coalesced duplicate shares the computation but gets
                # its own spelling's query class / minimization provenance
                # (provenance only for auto requests — explicit methods
                # never minimize and their keys never merge spellings).
                copied = replace(base.result)
                if request is not None:
                    copied = requalify_result(
                        copied, request.query, minimize=request.method == "auto"
                    )
                results.append(
                    replace(
                        base,
                        result=copied,
                        request_id=request_id,
                        coalesced=True,
                    )
                )
        return results

    def _normalize(self, entry: RequestLike) -> ServiceRequest:
        if isinstance(entry, ServiceRequest):
            if entry.instance_id not in self._instances:
                raise ServiceError(
                    f"instance {entry.instance_id!r} is not registered"
                )
            request = entry
        elif isinstance(entry, tuple) and len(entry) == 2:
            query, instance = entry
            request = ServiceRequest(
                query=query, instance_id=self._resolve_instance_id(instance)
            )
        else:
            raise ServiceError(
                "submit_many entries must be ServiceRequest objects or "
                "(query, instance) pairs"
            )
        # Resolve the service-level sampling defaults into the request, so
        # coalesce keys, cacheability and the worker all see one concrete
        # (ε, δ, seed) contract.
        if request.epsilon is None or request.delta is None or request.seed is None:
            request = replace(
                request,
                epsilon=(
                    request.epsilon if request.epsilon is not None
                    else self.default_epsilon
                ),
                delta=request.delta if request.delta is not None else self.default_delta,
                seed=request.seed if request.seed is not None else self.default_seed,
            )
        return request

    def _consume_solve(
        self,
        reply: Tuple[str, Any],
        worker: int,
        positions: List[int],
        normalized: List[ServiceRequest],
        answered: Dict[int, Tuple[ServiceResult, str]],
    ) -> None:
        status, value = reply
        if status != "ok":
            raise ServiceError(f"worker {worker} failed a solve batch: {value}")
        if len(value) != len(positions):  # pragma: no cover - protocol guard
            raise ServiceError(
                f"worker {worker} answered {len(value)} of {len(positions)} requests"
            )
        for position, outcome in zip(positions, value):
            if outcome[0] == "ok":
                _, result, cached = outcome
                answered[position] = (
                    ServiceResult(
                        result=result,
                        request_id=normalized[position].request_id,
                        worker=worker,
                        cached=cached,
                    ),
                    "",
                )
            else:
                answered[position] = (
                    ServiceResult(
                        result=None,
                        request_id=normalized[position].request_id,
                        worker=worker,
                        error=outcome[1],
                    ),
                    outcome[1],
                )

    # ------------------------------------------------------------------
    # updates and stats
    # ------------------------------------------------------------------
    def update_probability(
        self,
        instance: Union[str, ProbabilisticGraph],
        edge,
        probability,
    ) -> None:
        """Set one edge's probability on the owning worker's shard.

        The caller's registered instance object is updated too, so the local
        and worker-side views stay numerically identical; compiled plans on
        the worker survive (they read the live table) while its cached
        results for this instance are invalidated.
        """
        self._check_open()
        instance_id = self._resolve_instance_id(instance)
        local = self._instances[instance_id]
        if isinstance(edge, Edge):
            endpoints = (edge.source, edge.target)
        elif isinstance(edge, tuple) and len(edge) == 2:
            endpoints = edge
        else:
            raise ServiceError(f"cannot interpret {edge!r} as an edge")
        # Validate (and normalise) locally first: a bad update must fail
        # without desynchronising the worker copy.
        local.set_probability(endpoints, probability)
        self._stats_updates += 1
        self._call(
            self._worker_for(instance_id),
            "update",
            (instance_id, endpoints, probability),
        )

    def stats(self) -> ServiceStats:
        """Service-level coalescing counters plus per-worker statistics."""
        self._check_open()
        if self._inline is not None:
            workers = [self._inline.stats()]
        else:
            op_ids = {
                self._send(worker, "stats", None): worker
                for worker in range(self.num_workers)
            }
            replies = self._await(set(op_ids))
            ordered: Dict[int, Dict[str, Any]] = {}
            for op_id, (worker, reply) in replies.items():
                status, value = reply
                if status != "ok":  # pragma: no cover - protocol guard
                    raise ServiceError(f"worker {worker} failed stats: {value}")
                ordered[op_ids[op_id]] = value
            workers = [ordered[index] for index in sorted(ordered)]
        return ServiceStats(
            requests=self._stats_requests,
            dispatched=self._stats_dispatched,
            coalesced=self._stats_requests - self._stats_dispatched,
            batches=self._stats_batches,
            updates=self._stats_updates,
            workers=workers,
        )

    # ------------------------------------------------------------------
    # message plumbing
    # ------------------------------------------------------------------
    def _send(self, worker: int, op: str, payload: Any) -> int:
        op_id = next(self._next_op)
        self._queues[worker].put((op_id, op, payload))
        return op_id

    def _call(self, worker: int, op: str, payload: Any) -> Any:
        """Send one op and wait for its reply (inline mode short-circuits)."""
        if self._inline is not None:
            status, value = handle_message(self._inline, op, payload)
            if status != "ok":
                raise ServiceError(f"{op} failed: {value}")
            return value
        op_id = self._send(worker, op, payload)
        _, (status, value) = self._await({op_id})[op_id]
        if status != "ok":
            raise ServiceError(f"{op} failed on worker {worker}: {value}")
        return value

    def _await(self, op_ids: set) -> Dict[int, Tuple[int, Tuple[str, Any]]]:
        """Collect the replies for ``op_ids`` (tolerating interleaving)."""
        collected: Dict[int, Tuple[int, Tuple[str, Any]]] = {}
        pending = set(op_ids)
        for op_id in list(pending):
            if op_id in self._replies:
                collected[op_id] = self._replies.pop(op_id)
                pending.discard(op_id)
        while pending:
            try:
                worker, op_id, reply = self._results.get(timeout=self.timeout)
            except queue_module.Empty:
                dead = [p.pid for p in self._processes if not p.is_alive()]
                raise ServiceError(
                    "timed out waiting for worker replies"
                    + (f"; dead worker pids: {dead}" if dead else "")
                ) from None
            if op_id in pending:
                collected[op_id] = (worker, reply)
                pending.discard(op_id)
            else:  # pragma: no cover - interleaved caller patterns
                self._replies[op_id] = (worker, reply)
        return collected
